"""Tests for trace-driven profiles and the synthetic city generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.patterns import SECONDS_PER_DAY
from repro.traffic.traces import SyntheticCityTrace, TraceProfile


class TestTraceProfile:
    def test_replays_samples(self):
        profile = TraceProfile(10.0, [0.1, 0.5, 1.0], sample_period_s=100.0)
        assert profile.fraction(0.0) == 0.1
        assert profile.fraction(150.0) == 0.5
        assert profile.fraction(250.0) == 1.0

    def test_wrap(self):
        profile = TraceProfile(10.0, [0.1, 0.9], sample_period_s=100.0, wrap=True)
        assert profile.fraction(200.0) == 0.1
        assert profile.fraction(350.0) == 0.9

    def test_hold_last_without_wrap(self):
        profile = TraceProfile(10.0, [0.1, 0.9], sample_period_s=100.0, wrap=False)
        assert profile.fraction(10_000.0) == 0.9

    def test_duration(self):
        profile = TraceProfile(10.0, [0.1] * 6, sample_period_s=600.0)
        assert profile.duration_s == 3_600.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile(10.0, [])

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile(10.0, [0.5, -0.1])

    def test_nan_sample_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile(10.0, [0.5, float("nan")])

    def test_demand_scales(self):
        profile = TraceProfile(20.0, [0.5], noise_std=0.0)
        assert profile.demand(0.0) == pytest.approx(10.0)


class TestSyntheticCityTrace:
    def test_trace_length(self):
        trace = SyntheticCityTrace().generate(n_days=2, sample_period_s=600.0)
        assert trace.size == 2 * 144

    def test_deterministic_given_rng(self):
        a = SyntheticCityTrace().generate(rng=np.random.default_rng(1))
        b = SyntheticCityTrace().generate(rng=np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_diurnal_cycle_dominates(self):
        """Autocorrelation at one day beats autocorrelation at half a day."""
        trace = SyntheticCityTrace(noise_sigma=0.05).generate(
            n_days=7, rng=np.random.default_rng(2)
        )
        day = 144

        def autocorr(lag):
            a, b = trace[:-lag], trace[lag:]
            return np.corrcoef(a, b)[0, 1]

        assert autocorr(day) > autocorr(day // 2)
        assert autocorr(day) > 0.5

    def test_weekend_damping(self):
        trace = SyntheticCityTrace(
            weekend_damping=0.5, noise_sigma=0.0, flash_probability=0.0
        ).generate(n_days=7, rng=np.random.default_rng(3))
        day = 144
        weekday_mean = trace[: 5 * day].mean()
        weekend_mean = trace[5 * day :].mean()
        assert weekend_mean < weekday_mean * 0.7

    def test_land_use_shifts_peak(self):
        rng = np.random.default_rng
        office = SyntheticCityTrace("office", noise_sigma=0.0, flash_probability=0.0)
        residential = SyntheticCityTrace(
            "residential", noise_sigma=0.0, flash_probability=0.0
        )
        day = 144
        office_peak = int(np.argmax(office.generate(1, rng=rng(0))[:day]))
        res_peak = int(np.argmax(residential.generate(1, rng=rng(0))[:day]))
        assert office_peak != res_peak
        # Office peaks around 14:00 (sample 84), residential around 21:00 (126).
        assert abs(office_peak - 84) <= 6
        assert abs(res_peak - 126) <= 6

    def test_flash_events_exceed_one(self):
        trace = SyntheticCityTrace(
            noise_sigma=0.0, flash_probability=0.1, flash_magnitude=1.8
        ).generate(n_days=2, rng=np.random.default_rng(4))
        assert trace.max() > 1.2

    def test_unknown_land_use_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCityTrace("industrial")

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCityTrace(weekend_damping=0.0)
        with pytest.raises(ValueError):
            SyntheticCityTrace(flash_magnitude=0.5)
        with pytest.raises(ValueError):
            SyntheticCityTrace(noise_sigma=-1.0)

    def test_profile_wraps_trace(self):
        profile = SyntheticCityTrace().profile(
            25.0, n_days=1, rng=np.random.default_rng(5)
        )
        assert isinstance(profile, TraceProfile)
        assert profile.peak_mbps == 25.0
        assert profile.duration_s == pytest.approx(SECONDS_PER_DAY)

    def test_forecastable_by_holt_winters(self):
        """The generated structure is learnable — HW beats naive on it."""
        from repro.core.forecasting import (
            HoltWintersForecaster,
            NaiveForecaster,
            evaluate_forecaster,
        )

        trace = SyntheticCityTrace(noise_sigma=0.1).generate(
            n_days=5, sample_period_s=1_800.0, rng=np.random.default_rng(6)
        )
        hw = evaluate_forecaster(HoltWintersForecaster(season_length=48), trace)
        naive = evaluate_forecaster(NaiveForecaster(), trace)
        assert hw["mae"] < naive["mae"]
