"""Tests for traffic demand profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.patterns import (
    SECONDS_PER_DAY,
    ConstantProfile,
    DiurnalProfile,
    OnOffProfile,
    SpikeProfile,
)


class TestConstant:
    def test_flat_fraction(self):
        p = ConstantProfile(10.0, level=0.4)
        assert p.fraction(0.0) == 0.4
        assert p.fraction(1e6) == 0.4

    def test_demand_scales_by_peak(self):
        p = ConstantProfile(10.0, level=0.5, noise_std=0.0)
        assert p.demand(0.0) == pytest.approx(5.0)

    def test_noise_perturbs_but_never_negative(self, rng):
        p = ConstantProfile(10.0, level=0.1, noise_std=1.0)
        samples = [p.demand(0.0, rng) for _ in range(200)]
        assert all(s >= 0.0 for s in samples)
        assert np.std(samples) > 0

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ConstantProfile(0.0)
        with pytest.raises(ValueError):
            ConstantProfile(10.0, level=2.0)
        with pytest.raises(ValueError):
            ConstantProfile(10.0, noise_std=-0.1)


class TestDiurnal:
    def test_peaks_once_per_period(self):
        p = DiurnalProfile(10.0, base=0.2, phase=0.0)
        fractions = [p.fraction(t) for t in np.linspace(0, SECONDS_PER_DAY, 200)]
        assert max(fractions) == pytest.approx(1.0, abs=0.01)
        assert min(fractions) == pytest.approx(0.2, abs=0.01)

    def test_phase_shifts_peak(self):
        base = DiurnalProfile(10.0, phase=0.0)
        shifted = DiurnalProfile(10.0, phase=0.5)
        # The peak of phase 0 is at half a day; phase 0.5 peaks at 0/full day.
        assert base.fraction(SECONDS_PER_DAY / 2) == pytest.approx(1.0)
        assert shifted.fraction(0.0) == pytest.approx(1.0)

    def test_periodicity(self):
        p = DiurnalProfile(10.0, phase=0.3)
        assert p.fraction(1_000.0) == pytest.approx(p.fraction(1_000.0 + SECONDS_PER_DAY))

    def test_mean_fraction_between_base_and_one(self):
        p = DiurnalProfile(10.0, base=0.2)
        mean = p.mean_fraction()
        assert 0.2 < mean < 1.0
        assert mean == pytest.approx(0.6, abs=0.05)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(10.0, base=1.0)
        with pytest.raises(ValueError):
            DiurnalProfile(10.0, period_s=0.0)


class TestOnOff:
    def test_square_wave(self):
        p = OnOffProfile(10.0, on_fraction=0.25, period_s=100.0, floor=0.1)
        assert p.fraction(10.0) == 1.0
        assert p.fraction(30.0) == 0.1
        assert p.fraction(110.0) == 1.0  # next period

    def test_mean_fraction_matches_duty_cycle(self):
        p = OnOffProfile(10.0, on_fraction=0.3, period_s=3_600.0, floor=0.0)
        assert p.mean_fraction(horizon_s=36_000.0, samples=3_600) == pytest.approx(0.3, abs=0.02)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            OnOffProfile(10.0, on_fraction=0.0)
        with pytest.raises(ValueError):
            OnOffProfile(10.0, floor=1.5)


class TestSpike:
    def test_spike_then_baseline(self):
        p = SpikeProfile(10.0, baseline=0.1, spike_every_s=100.0, spike_duration_s=10.0)
        assert p.fraction(5.0) == 1.0
        assert p.fraction(50.0) == 0.1
        assert p.fraction(105.0) == 1.0

    def test_duration_must_be_shorter_than_interval(self):
        with pytest.raises(ValueError):
            SpikeProfile(10.0, spike_every_s=10.0, spike_duration_s=10.0)


@settings(max_examples=50, deadline=None)
@given(
    peak=st.floats(min_value=0.1, max_value=1e3),
    t=st.floats(min_value=0.0, max_value=1e7),
    base=st.floats(min_value=0.0, max_value=0.9),
)
def test_property_diurnal_fraction_bounded(peak, t, base):
    p = DiurnalProfile(peak, base=base)
    fraction = p.fraction(t)
    assert base - 1e-9 <= fraction <= 1.0 + 1e-9
    assert p.demand(t) <= peak * (1.0 + 1e-9)
