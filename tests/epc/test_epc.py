"""Tests for the vEPC substrate: components, instance, attach."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
from repro.cloud.heat import HeatStack
from repro.cloud.placement import BestFitPlacement
from repro.core.slices import PLMN
from repro.epc.attach import RRC_SETUP_MS, SIGNALLING_TRAVERSALS, AttachProcedure
from repro.epc.components import (
    EPC_COMPONENT_FLAVORS,
    EpcComponentType,
    epc_template,
)
from repro.epc.instance import EpcError, EpcInstance
from repro.ran.channel import ChannelModel
from repro.ran.enb import ENodeB
from repro.ran.ue import UserEquipment


def make_epc(slice_id: str = "slice-1", plmn_id: str = "00101") -> EpcInstance:
    dc = Datacenter("dc", DatacenterTier.EDGE, nodes=[ComputeNode("n1", vcpus=16)])
    stack = HeatStack(epc_template(slice_id), dc, owner=slice_id)
    stack.create(BestFitPlacement())
    return EpcInstance(slice_id, plmn_id, stack)


class TestComponents:
    def test_four_functions(self):
        assert len(EpcComponentType) == 4
        assert set(EPC_COMPONENT_FLAVORS) == set(EpcComponentType)

    def test_template_has_one_vm_per_function(self):
        t = epc_template("slice-1")
        assert len(t.resources) == 4
        assert {r.name for r in t.resources} == {"mme", "hss", "sgw", "pgw"}
        assert t.total_vcpus == 6  # 2 small (1) + 2 medium (2)


class TestInstance:
    def test_requires_complete_stack(self):
        dc = Datacenter("dc", DatacenterTier.EDGE, nodes=[ComputeNode("n1")])
        stack = HeatStack(epc_template("s"), dc)
        with pytest.raises(EpcError):
            EpcInstance("s", "00101", stack)  # not created yet

    def test_provision_and_lookup(self):
        epc = make_epc()
        epc.provision_subscriber("001010000000001")
        assert epc.is_subscriber("001010000000001")
        assert epc.subscriber_count == 1

    def test_foreign_plmn_imsi_rejected(self):
        epc = make_epc(plmn_id="00101")
        with pytest.raises(EpcError):
            epc.provision_subscriber("310410000000001")

    def test_duplicate_imsi_rejected(self):
        epc = make_epc()
        epc.provision_subscriber("001010000000001")
        with pytest.raises(EpcError):
            epc.provision_subscriber("001010000000001")

    def test_session_lifecycle(self):
        epc = make_epc()
        epc.provision_subscriber("001010000000001")
        bearer = epc.create_session("001010000000001")
        assert epc.session_of("001010000000001") == bearer
        assert epc.active_sessions == 1
        epc.delete_session("001010000000001")
        assert epc.active_sessions == 0

    def test_unknown_imsi_session_rejected(self):
        epc = make_epc()
        with pytest.raises(EpcError):
            epc.create_session("001010000000009")

    def test_double_session_rejected(self):
        epc = make_epc()
        epc.provision_subscriber("001010000000001")
        epc.create_session("001010000000001")
        with pytest.raises(EpcError):
            epc.create_session("001010000000001")

    def test_shutdown_clears_sessions(self):
        epc = make_epc()
        epc.provision_subscriber("001010000000001")
        epc.create_session("001010000000001")
        epc.shutdown()
        assert epc.active_sessions == 0
        with pytest.raises(EpcError):
            epc.create_session("001010000000001")


class TestAttach:
    def _setup(self, transport_delay_ms: float = 2.0):
        plmn = PLMN("001", "01")
        enb = ENodeB("enb1")
        epc = make_epc()
        enb.install_slice("slice-1", plmn, nominal_prbs=10, effective_prbs=10)
        procedure = AttachProcedure(enb, epc, transport_delay_ms)
        ue = UserEquipment(plmn, "slice-1", channel=ChannelModel(mean_snr_db=15.0, volatility_db=0.0))
        enb.register_ue(ue)
        return plmn, enb, epc, procedure, ue

    def test_successful_attach(self):
        _, enb, epc, procedure, ue = self._setup()
        epc.provision_subscriber(ue.imsi)
        outcome = procedure.attach(ue)
        assert outcome.success
        assert ue.attached
        assert outcome.bearer_id == 1
        assert enb.attached_count("slice-1") == 1

    def test_latency_accounting(self):
        _, _, epc, procedure, ue = self._setup(transport_delay_ms=3.0)
        epc.provision_subscriber(ue.imsi)
        outcome = procedure.attach(ue)
        expected = RRC_SETUP_MS + SIGNALLING_TRAVERSALS * 3.0 + epc.control_plane_latency_ms()
        assert outcome.latency_ms == pytest.approx(expected)

    def test_unknown_imsi_rejected_by_hss(self):
        _, _, _, procedure, ue = self._setup()
        outcome = procedure.attach(ue)  # never provisioned
        assert not outcome.success
        assert "HSS" in outcome.failure_reason
        assert not ue.attached

    def test_wrong_plmn_no_cell(self):
        plmn, enb, epc, procedure, _ = self._setup()
        stranger = UserEquipment(PLMN("001", "09"), "slice-other")
        outcome = procedure.attach(stranger)
        assert not outcome.success
        assert "not broadcast" in outcome.failure_reason

    def test_out_of_coverage(self):
        _, enb, epc, procedure, _ = self._setup()
        weak = UserEquipment(
            PLMN("001", "01"),
            "slice-1",
            channel=ChannelModel(mean_snr_db=-30.0, volatility_db=0.0),
        )
        epc.provision_subscriber(weak.imsi)
        outcome = procedure.attach(weak)
        assert not outcome.success
        assert "coverage" in outcome.failure_reason

    def test_epc_down_fails_session(self):
        _, _, epc, procedure, ue = self._setup()
        epc.provision_subscriber(ue.imsi)
        epc.shutdown()
        outcome = procedure.attach(ue)
        assert not outcome.success
        assert not ue.attached

    def test_detach_tears_down_session(self):
        _, _, epc, procedure, ue = self._setup()
        epc.provision_subscriber(ue.imsi)
        procedure.attach(ue)
        procedure.detach(ue)
        assert not ue.attached
        assert epc.session_of(ue.imsi) is None

    def test_reattach_after_detach(self):
        _, _, epc, procedure, ue = self._setup()
        epc.provision_subscriber(ue.imsi)
        procedure.attach(ue)
        procedure.detach(ue)
        outcome = procedure.attach(ue)
        assert outcome.success
