"""Heal under repeated and overlapping failures.

The chaos case the scenario engine must survive: an outage that strikes
again mid-heal.  Two layers of coverage —

* FailurePack unit level: overlapping windows on the same link are
  reference-counted, so the first window's restore does *not* bring the
  link back while the second window still holds it down;
* ScenarioRunner end-to-end: an outage → restore → outage sequence (plus
  overlapping windows and a no-detour DC outage) finishes with zero lost
  slices, zero leaked or non-committed reservations, and every outage
  record individually converged — i.e. no double-compensation and no
  double-restore.
"""

from __future__ import annotations

import pytest

from repro.drivers.base import ReservationState
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.scenarios import (
    FailurePack,
    FailureSpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# FailurePack reference counting (unit level)
# ----------------------------------------------------------------------
class TestOverlappingWindowsRefcount:
    def _pack(self, failures):
        sim = Simulator()
        testbed = build_testbed(TestbedConfig(n_enbs=2))
        topology = testbed.transport.topology
        pack = FailurePack(sim, topology, failures)
        pack.schedule()
        return sim, topology, pack

    def test_shared_link_restores_only_when_last_window_ends(self):
        sim, topology, pack = self._pack(
            [
                FailureSpec("link", "enb1-mmwave", start_s=100.0, duration_s=200.0),
                FailureSpec("link", "enb1-mmwave", start_s=200.0, duration_s=200.0),
            ]
        )
        link = topology.link("enb1-mmwave-fwd")
        assert link.up
        sim.run_until(150.0)  # inside window 1 only
        assert not link.up
        sim.run_until(350.0)  # window 1 restored at 300, window 2 holds
        assert not link.up
        assert pack.any_links_down()
        sim.run_until(450.0)  # last window ended at 400
        assert link.up
        assert topology.link("enb1-mmwave-rev").up
        assert not pack.any_links_down()

    def test_sequential_windows_strike_twice(self):
        sim, topology, _ = self._pack(
            [
                FailureSpec("link", "enb2-uwave", start_s=50.0, duration_s=50.0),
                FailureSpec("link", "enb2-uwave", start_s=200.0, duration_s=50.0),
            ]
        )
        link = topology.link("enb2-uwave-fwd")
        sim.run_until(75.0)
        assert not link.up
        sim.run_until(150.0)
        assert link.up  # fully restored between the strikes
        sim.run_until(225.0)
        assert not link.up  # struck again
        sim.run_until(300.0)
        assert link.up

    def test_dc_and_enb_windows_share_refcounts_with_link_windows(self):
        # An enb outage covers both uplinks; a link outage on one of
        # them overlaps.  The shared uplink must survive the enb
        # restore and come back only when the link window ends too.
        sim, topology, _ = self._pack(
            [
                FailureSpec("enb", "enb1", start_s=100.0, duration_s=100.0),
                FailureSpec("link", "enb1-mmwave", start_s=150.0, duration_s=150.0),
            ]
        )
        mmwave = topology.link("enb1-mmwave-fwd")
        uwave = topology.link("enb1-uwave-fwd")
        sim.run_until(250.0)  # enb restored at 200; link window holds mmwave
        assert uwave.up
        assert not mmwave.up
        sim.run_until(350.0)
        assert mmwave.up

    def test_unknown_link_target_is_a_scenario_error(self):
        sim = Simulator()
        testbed = build_testbed(TestbedConfig(n_enbs=2))
        with pytest.raises(ScenarioError, match="no such transport link"):
            FailurePack(
                sim,
                testbed.transport.topology,
                [FailureSpec("link", "enb9-warp", start_s=1.0, duration_s=1.0)],
            )


# ----------------------------------------------------------------------
# ScenarioRunner end-to-end chaos sequence
# ----------------------------------------------------------------------
def _chaos_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": "chaos-repeat-heal",
            "seed": 7,
            "horizon_s": 3_600.0,
            "epoch_s": 60.0,
            "n_enbs": 2,
            "tenants": [{"tenant_id": "chaos-embb", "max_mbps": 12.0}],
            "mobility": {"model": "commuter-tides", "n_users": 16},
            "failures": [
                # outage → restore → outage on the same link
                {"kind": "link", "target": "enb1-mmwave", "start_s": 420.0,
                 "duration_s": 300.0},
                {"kind": "link", "target": "enb1-mmwave", "start_s": 900.0,
                 "duration_s": 300.0},
                # overlapping windows on the same link (strike mid-heal)
                {"kind": "link", "target": "enb1-mmwave", "start_s": 1_500.0,
                 "duration_s": 600.0},
                {"kind": "link", "target": "enb1-mmwave", "start_s": 1_800.0,
                 "duration_s": 600.0},
                # no-detour DC outage late in the run
                {"kind": "dc", "target": "core-dc", "start_s": 2_700.0,
                 "duration_s": 300.0},
            ],
        }
    )


@pytest.fixture(scope="module")
def chaos_run():
    runner = ScenarioRunner(_chaos_spec())
    report = runner.run()
    return runner, report


class TestRepeatedFailureHeal:
    def test_every_outage_heals_individually(self, chaos_run):
        _, report = chaos_run
        assert report.outages == 5
        assert report.outages_healed == 5
        assert all(c is not None and c > 0 for c in report.heal_convergence_s)

    def test_no_lost_or_leaked_state(self, chaos_run):
        _, report = chaos_run
        assert report.lost_slices == []
        assert report.leaked_reservations == []
        assert report.clean

    def test_no_links_left_down_or_double_restored(self, chaos_run):
        runner, _ = chaos_run
        assert not runner.pack.any_links_down()
        assert all(
            link.up for link in runner.testbed.transport.topology.links()
        )

    def test_reservations_all_committed_no_double_compensation(self, chaos_run):
        # Independent audit (same idiom as the CI failover drill): every
        # reservation still held by any driver belongs to a live slice
        # and sits in COMMITTED — a second strike mid-heal must not
        # leave a duplicate or half-rolled-back reservation behind.
        runner, _ = chaos_run
        live = {s.slice_id for s in runner.orchestrator.live_slices()}
        for driver in runner.testbed.registry.drivers():
            seen = set()
            for reservation in driver.list_reservations():
                assert reservation.slice_id in live
                assert reservation.state is ReservationState.COMMITTED
                assert reservation.slice_id not in seen, (
                    f"duplicate reservation for {reservation.slice_id} "
                    f"in domain {driver.domain}"
                )
                seen.add(reservation.slice_id)

    def test_sla_accounting_is_single_counted(self, chaos_run):
        _, report = chaos_run
        assert 0 <= report.sla_violations <= report.sla_epochs
        # Strikes and restores each appear exactly once in the timeline.
        strikes = [e for e in report.timeline if e[1] == "failure.strike"]
        restores = [e for e in report.timeline if e[1] == "failure.restore"]
        assert len(strikes) == len(restores) == 5
