"""Scenario runner end-to-end: packs run clean and score correctly."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    build_named,
    run_named,
)


@pytest.fixture(scope="module")
def smoke_report():
    """One shared commuter-failure-smoke run (module-scoped: the run is
    the expensive part; every assertion here is read-only)."""
    return run_named("commuter-failure-smoke", seed=42)


class TestCommuterFailureSmoke:
    def test_zero_lost_and_leaked(self, smoke_report):
        assert smoke_report.lost_slices == []
        assert smoke_report.leaked_reservations == []
        assert smoke_report.clean

    def test_dc_outage_heals_by_restoration(self, smoke_report):
        dc = [o for o in smoke_report.outage_detail if o["kind"] == "dc"]
        assert len(dc) == 1 and dc[0]["healed"]
        # The DC attachment has no detour: convergence must span the
        # outage window, it cannot beat the restoration.
        assert dc[0]["convergence_s"] >= dc[0]["end_s"] - dc[0]["start_s"]

    def test_link_outage_bites_and_heals(self, smoke_report):
        assert smoke_report.outages == 2
        assert smoke_report.outages_healed == 2
        assert smoke_report.sla_violations > 0  # the DC window hurt

    def test_mobility_produced_handovers_and_rescales(self, smoke_report):
        assert smoke_report.handovers > 0
        assert smoke_report.rescales_applied > 0
        assert len(smoke_report.handover_latency_ms) == smoke_report.handovers
        assert smoke_report.handover_p95_ms >= smoke_report.handover_p50_ms >= 0.0

    def test_admission_yield_and_counts(self, smoke_report):
        assert smoke_report.submitted == 2  # 1 tenant x 2 cells
        assert smoke_report.admitted + smoke_report.rejected == 2
        assert 0.0 < smoke_report.admission_yield <= 1.0

    def test_report_serialises(self, smoke_report):
        payload = smoke_report.to_dict()
        assert payload["digest"] == smoke_report.digest
        assert payload["clean"] is True
        assert payload["outage_detail"]
        # Wall-clock fields are reported but never hashed.
        assert "wall_s" in payload
        assert "wall_s" not in smoke_report.deterministic_dict()
        assert "handover_p50_ms" not in smoke_report.deterministic_dict()


def test_vehicular_pack_runs_clean():
    report = run_named("vehicular-corridor", seed=42)
    assert report.clean
    assert report.outages_healed == report.outages == 1
    assert report.handovers > 0


def test_quiet_pack_has_no_outage_machinery():
    report = run_named("commuter-quiet", seed=1)
    assert report.clean
    assert report.outages == 0
    assert report.heal_convergence_s == []
    assert report.sla_violations == 0


def test_overrides_reach_the_spec():
    report = run_named("commuter-quiet", seed=1, horizon_s=900.0)
    assert report.horizon_s == 900.0
    with pytest.raises(Exception, match="unknown override"):
        run_named("commuter-quiet", seed=1, bogus=1)


def test_runner_rejects_invalid_spec():
    spec = build_named("commuter-quiet", seed=0)
    payload = spec.to_dict()
    payload["tenants"] = []
    with pytest.raises(Exception, match="at least one tenant"):
        ScenarioRunner(ScenarioSpec.from_dict(payload))


def test_timeline_records_every_event_kind(smoke_report):
    kinds = {entry[1] for entry in smoke_report.timeline}
    assert {"submit", "handover", "rescale", "failure.strike",
            "failure.restore"} <= kinds
    times = [entry[0] for entry in smoke_report.timeline]
    assert times == sorted(times)
