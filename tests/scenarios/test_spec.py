"""Scenario spec: validation, serialisation round-trips, named packs."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.spec import (
    FailureSpec,
    MobilitySpec,
    ScenarioError,
    ScenarioSpec,
    TenantSpec,
    build_named,
    load_scenario_file,
    named_scenarios,
)


def _minimal_spec(**overrides) -> ScenarioSpec:
    payload = {
        "name": "t",
        "horizon_s": 1_200.0,
        "n_enbs": 2,
        "tenants": [{"tenant_id": "a"}],
        "mobility": {"model": "commuter-tides", "n_users": 4},
    }
    payload.update(overrides)
    return ScenarioSpec.from_dict(payload)


def test_round_trip_through_dict():
    spec = build_named("commuter-failure", seed=3)
    clone = ScenarioSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.canonical_json() == spec.canonical_json()


def test_round_trip_through_json_file(tmp_path):
    spec = build_named("vehicular-corridor", seed=9)
    path = tmp_path / "pack.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert load_scenario_file(str(path)) == spec


def test_named_registry_contains_flagship_packs():
    names = named_scenarios()
    assert "commuter-failure" in names
    assert "commuter-failure-smoke" in names
    assert "vehicular-corridor" in names
    with pytest.raises(ScenarioError, match="unknown scenario"):
        build_named("no-such-pack")


def test_seed_is_the_only_difference_between_builds():
    a, b = build_named("commuter-failure", 1), build_named("commuter-failure", 2)
    assert a.seed == 1 and b.seed == 2
    assert a.to_dict() | {"seed": 2} == b.to_dict()


@pytest.mark.parametrize(
    "overrides, match",
    [
        ({"tenants": []}, "at least one tenant"),
        ({"n_enbs": 1}, "edge/core split"),
        ({"rescale_hysteresis": 1.0}, "hysteresis"),
        (
            {"tenants": [{"tenant_id": "a"}, {"tenant_id": "a"}]},
            "duplicate tenant",
        ),
        ({"mobility": {"model": "warp-drive"}}, "unknown mobility model"),
        ({"mobility": {"model": "trace"}}, "requires trace_path"),
        ({"bogus_field": 1}, "unknown scenario fields"),
    ],
)
def test_validation_rejects_bad_specs(overrides, match):
    with pytest.raises(ScenarioError, match=match):
        _minimal_spec(**overrides)


def test_failures_must_restore_inside_the_horizon():
    with pytest.raises(ScenarioError, match="restore inside the horizon"):
        _minimal_spec(
            failures=[
                {"kind": "link", "target": "enb1-mmwave", "start_s": 1_000.0,
                 "duration_s": 500.0}
            ]
        )
    with pytest.raises(ScenarioError, match="unknown failure kind"):
        FailureSpec("meteor", "earth", 10.0, 5.0).validate(1_000.0)


def test_enb_failure_target_must_exist_in_fleet():
    with pytest.raises(ScenarioError, match="outside the .*fleet"):
        _minimal_spec(
            failures=[
                {"kind": "enb", "target": "enb7", "start_s": 100.0,
                 "duration_s": 50.0}
            ]
        )


def test_tenant_and_mobility_validation():
    with pytest.raises(ScenarioError, match="base_mbps_per_user"):
        TenantSpec(tenant_id="a", base_mbps_per_user=0.0).validate()
    with pytest.raises(ScenarioError, match="min_mbps"):
        TenantSpec(tenant_id="a", min_mbps=9.0, max_mbps=3.0).validate()
    with pytest.raises(ScenarioError, match="n_users"):
        MobilitySpec(model="commuter-tides", n_users=0).validate()
