"""Mobility models: timeline shape, determinism, trace loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.mobility import (
    CommuterTides,
    VehicularCorridor,
    build_model,
    load_trace_timeline,
)
from repro.scenarios.spec import MobilitySpec, ScenarioError

HORIZON = 10_000.0


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestCommuterTides:
    def test_morning_moves_edge_to_core_evening_reverses(self):
        timeline = CommuterTides().timeline(40, 6, HORIZON, _rng())
        edge = set(range(3))
        core = set(range(3, 6))
        assert all(cell in edge for cell in timeline.initial_cells)
        morning = [e for e in timeline.handovers if e.time_s < 0.5 * HORIZON]
        evening = [e for e in timeline.handovers if e.time_s >= 0.5 * HORIZON]
        assert morning and evening
        assert all(
            e.from_cell in edge and e.to_cell in core for e in morning
        )
        assert all(
            e.from_cell in core and e.to_cell in edge for e in evening
        )

    def test_windows_bound_handover_times(self):
        model = CommuterTides(morning=(0.1, 0.2), evening=(0.8, 0.9))
        timeline = model.timeline(30, 4, HORIZON, _rng(3))
        for event in timeline.handovers:
            frac = event.time_s / HORIZON
            assert 0.1 <= frac <= 0.2 or 0.8 <= frac <= 0.9

    def test_non_commuters_stay_home(self):
        model = CommuterTides(commuter_fraction=0.5)
        timeline = model.timeline(100, 4, HORIZON, _rng(1))
        movers = {e.user for e in timeline.handovers}
        assert 0 < len(movers) < 100

    def test_timeline_is_internally_consistent(self):
        CommuterTides().timeline(25, 6, HORIZON, _rng(7)).validate()

    def test_bad_windows_rejected(self):
        with pytest.raises(ScenarioError, match="windows"):
            CommuterTides(morning=(0.5, 0.4))
        with pytest.raises(ScenarioError, match="commuter_fraction"):
            CommuterTides(commuter_fraction=0.0)


class TestVehicularCorridor:
    def test_each_vehicle_hands_over_in_cell_order(self):
        timeline = VehicularCorridor().timeline(5, 6, HORIZON, _rng())
        timeline.validate()
        assert all(cell == 0 for cell in timeline.initial_cells)
        for vehicle in range(5):
            chain = [e for e in timeline.handovers if e.user == vehicle]
            hops = [(e.from_cell, e.to_cell) for e in chain]
            assert hops == [(i, i + 1) for i in range(len(hops))]
            times = [e.time_s for e in chain]
            assert times == sorted(times)

    def test_chains_from_different_vehicles_interleave(self):
        timeline = VehicularCorridor().timeline(8, 5, HORIZON, _rng(2))
        order = [e.user for e in timeline.handovers]
        # Sorted globally by time, the per-vehicle chains interleave —
        # the stream is not one vehicle's full chain after another's.
        assert order != sorted(order)

    def test_dwell_validation(self):
        with pytest.raises(ScenarioError, match="depart"):
            VehicularCorridor(depart=(0.9, 0.2))
        with pytest.raises(ScenarioError, match="dwell_fraction"):
            VehicularCorridor(dwell_fraction=0.0)


def test_models_are_deterministic_per_generator_state():
    for model in (CommuterTides(), VehicularCorridor()):
        a = model.timeline(20, 4, HORIZON, _rng(11))
        b = model.timeline(20, 4, HORIZON, _rng(11))
        assert a.handovers == b.handovers
        assert a.initial_cells == b.initial_cells


def test_build_model_dispatch():
    assert isinstance(
        build_model(MobilitySpec(model="commuter-tides")), CommuterTides
    )
    assert isinstance(
        build_model(MobilitySpec(model="vehicular-corridor")),
        VehicularCorridor,
    )


class TestTraceLoader:
    def test_loads_jsonl_attachment_log(self, tmp_path):
        rows = [
            {"t": 0.0, "user": "a", "cell": 0},
            {"t": 0.0, "user": "b", "cell": 1},
            {"t": 50.0, "user": "a", "cell": 2},
            {"t": 80.0, "user": "a", "cell": 1},
            {"t": 90.0, "user": "b", "cell": 2},
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(__import__("json").dumps(r) for r in rows))
        timeline = load_trace_timeline(str(path))
        timeline.validate()
        assert timeline.n_cells == 3
        assert list(timeline.initial_cells) == [0, 1]
        assert [(e.time_s, e.user, e.from_cell, e.to_cell) for e in timeline.handovers] == [
            (50.0, 0, 0, 2),
            (80.0, 0, 2, 1),
            (90.0, 1, 1, 2),
        ]

    def test_trace_model_runs_through_spec(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 0, "user": "u", "cell": 0}\n')
        model = build_model(MobilitySpec(model="trace", trace_path=str(path)))
        timeline = model.timeline(1, 2, 100.0, _rng())
        assert list(timeline.initial_cells) == [0]

    def test_bad_rows_are_rejected_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0, "user": "u"}\n')
        with pytest.raises(ScenarioError, match="bad.jsonl:1"):
            load_trace_timeline(str(path))
