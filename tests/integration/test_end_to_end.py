"""Integration tests: full orchestrator round-trips on the Fig. 2 testbed."""

from __future__ import annotations


from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import FixedOverbooking, ForecastOverbooking, NoOverbooking
from repro.core.slices import ServiceType, SliceState
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.generator import RequestMix
from repro.traffic.patterns import ConstantProfile, DiurnalProfile
from tests.conftest import make_request


def build_orchestrator(testbed, **kwargs):
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=5),
        **kwargs,
    )
    orch.start()
    return sim, orch


class TestFullLifecycle:
    def test_submit_deploy_serve_expire_readmit(self, testbed):
        sim, orch = build_orchestrator(testbed)
        request = make_request(duration_s=600.0)
        profile = ConstantProfile(request.sla.throughput_mbps, level=0.5, noise_std=0.0)
        decision = orch.submit(request, profile)
        assert decision.admitted
        sim.run_until(300.0)
        slice_id = request.request_id.replace("req-", "slice-")
        assert orch.slice(slice_id).state is SliceState.ACTIVE
        assert orch.runtime(slice_id).last_delivered_mbps > 0
        sim.run_until(700.0)
        assert orch.slice(slice_id).state is SliceState.EXPIRED
        # All three domains fully reclaimed: a new identical request fits.
        request2 = make_request(duration_s=600.0)
        assert orch.submit(request2, profile).admitted

    def test_capacity_exhaustion_then_recovery(self, testbed):
        sim, orch = build_orchestrator(testbed)
        admitted = []
        # Saturate the RAN with 30 Mb/s slices (cell ≈ 49 Mb/s).
        for i in range(6):
            request = make_request(throughput_mbps=30.0, duration_s=900.0)
            profile = ConstantProfile(30.0, level=0.4, noise_std=0.0)
            decision = orch.submit(request, profile)
            admitted.append(decision.admitted)
        assert admitted[:2] == [True, True]
        assert not all(admitted)  # someone got rejected
        rejected_count = orch.ledger.rejections
        assert rejected_count >= 1
        # After expiry the next request is admitted again.
        sim.run_until(1_000.0)
        request = make_request(throughput_mbps=30.0)
        assert orch.submit(
            request, ConstantProfile(30.0, level=0.4, noise_std=0.0)
        ).admitted

    def test_multi_vertical_workload_all_states_terminal_or_active(self, testbed):
        config = ScenarioConfig(
            horizon_s=3_600.0,
            arrival_rate_per_s=1 / 90.0,
            seed=3,
            overbooking=FixedOverbooking(1.5),
        )
        result = run_scenario(config)
        assert result.requests >= 20
        assert result.admitted >= 5


class TestOverbookingBehaviour:
    def test_overbooking_admits_more_than_baseline(self):
        """The headline demo claim at admission level: overbooked posture
        accommodates more slices than nominal reservation."""
        base = run_scenario(
            ScenarioConfig(
                horizon_s=3_600.0,
                arrival_rate_per_s=1 / 60.0,
                seed=9,
                overbooking=NoOverbooking(),
            )
        )
        overbooked = run_scenario(
            ScenarioConfig(
                horizon_s=3_600.0,
                arrival_rate_per_s=1 / 60.0,
                seed=9,
                overbooking=FixedOverbooking(2.0),
            )
        )
        assert overbooked.admitted > base.admitted
        assert overbooked.peak_multiplexing_gain > 1.0

    def test_aggressive_overbooking_causes_violations(self):
        """Push hard enough and SLA violations (penalties) must appear —
        the other side of the demo's trade-off."""
        result = run_scenario(
            ScenarioConfig(
                horizon_s=4 * 3_600.0,
                arrival_rate_per_s=1 / 45.0,
                seed=4,
                overbooking=FixedOverbooking(3.0),
                mix=RequestMix.single(ServiceType.EMBB),
            )
        )
        assert result.violation_rate > 0.0
        assert result.total_penalties > 0.0

    def test_forecast_overbooking_reconfigures_down(self, testbed):
        sim, orch = build_orchestrator(
            testbed,
            overbooking=ForecastOverbooking(quantile=0.9),
            config=OrchestratorConfig(
                monitoring_epoch_s=60.0,
                reconfig_every_epochs=2,
                min_history_for_forecast=5,
            ),
        )
        request = make_request(throughput_mbps=40.0, duration_s=3_600.0)
        orch.submit(request, ConstantProfile(40.0, level=0.25, noise_std=0.02))
        sim.run_until(1_800.0)
        slice_id = request.request_id.replace("req-", "slice-")
        assert orch.runtime(slice_id).effective_fraction < 0.6


class TestPlmnMapping:
    def test_each_slice_gets_unique_plmn(self, testbed):
        sim, orch = build_orchestrator(testbed)
        plmns = set()
        for _ in range(4):
            request = make_request(throughput_mbps=8.0)
            decision = orch.submit(
                request, ConstantProfile(8.0, level=0.5, noise_std=0.0)
            )
            assert decision.admitted
            slice_id = request.request_id.replace("req-", "slice-")
            plmns.add(str(orch.slice(slice_id).plmn))
        assert len(plmns) == 4

    def test_enb_broadcasts_installed_slices(self, testbed):
        sim, orch = build_orchestrator(testbed)
        request = make_request(throughput_mbps=8.0)
        orch.submit(request, ConstantProfile(8.0, level=0.5, noise_std=0.0))
        sim.run_until(10.0)
        slice_id = request.request_id.replace("req-", "slice-")
        network_slice = orch.slice(slice_id)
        enb = testbed.ran.enb(network_slice.allocation.ran.enb_id)
        assert enb.broadcasts(network_slice.plmn.plmn_id)


class TestDiurnalWorkload:
    def test_diurnal_slice_served_across_day(self, testbed):
        sim, orch = build_orchestrator(
            testbed,
            overbooking=ForecastOverbooking(quantile=0.95),
            config=OrchestratorConfig(
                monitoring_epoch_s=300.0,
                reconfig_every_epochs=4,
                min_history_for_forecast=8,
            ),
        )
        request = make_request(throughput_mbps=30.0, duration_s=86_400.0)
        profile = DiurnalProfile(30.0, base=0.2, noise_std=0.05)
        assert orch.submit(request, profile).admitted
        sim.run_until(86_000.0)
        slice_id = request.request_id.replace("req-", "slice-")
        network_slice = orch.slice(slice_id)
        assert network_slice.served_epochs > 200
        # A single slice on an otherwise idle testbed must meet its SLA.
        assert network_slice.violation_ratio() < 0.05
