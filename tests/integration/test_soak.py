"""Soak test: every feature running together over a simulated day.

One scenario exercises at once: batch broker, advance bookings, adaptive
overbooking driven by Holt-Winters forecasts, city-trace traffic,
priority scheduling, a link-failure window with self-healing, one
mid-life slice rescale — then asserts the global invariants still hold.

A second scenario (``churn_run``) soaks the *fleet-scale install
engine*: multiple tenants submit admission bursts that flush through
the broker into the concurrent batch planner, slices expire and free
capacity for the next burst, a link fails and heals mid-run — and the
event feed must never carry a ``driver.rollback`` for an install that
ultimately succeeded.

The churn scenario scales through the environment so the nightly CI
soak can run it much harder than the per-push tier-1 budget allows:

- ``SOAK_CHURN_CYCLES`` — admission-burst cycles (default 6).
- ``SOAK_BURST_SLICES`` — slices per tenant per burst (default 3).
"""

from __future__ import annotations

import os

import pytest

from repro.core.admission import KnapsackPolicy
from repro.core.broker import SliceBroker
from repro.core.forecasting import HoltWintersForecaster
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import AdaptiveOverbooking
from repro.core.slices import ServiceType, SliceState
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from repro.traffic.traces import SyntheticCityTrace
from tests.conftest import make_request

HOUR = 3_600.0


@pytest.fixture(scope="module")
def soak_run():
    testbed = build_testbed()
    sim = Simulator()
    streams = RandomStreams(seed=99)
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=AdaptiveOverbooking(violation_budget=0.05),
        forecaster_factory=lambda: HoltWintersForecaster(season_length=24),
        config=OrchestratorConfig(
            monitoring_epoch_s=300.0,
            reconfig_every_epochs=4,
            min_history_for_forecast=10,
        ),
        streams=streams,
    )
    orch.start()
    broker = SliceBroker(orch, window_s=600.0, policy=KnapsackPolicy())
    # Advance booking for the evening.
    evening = make_request(
        throughput_mbps=30.0,
        duration_s=3 * HOUR,
        price=300.0,
        service_type=ServiceType.EMBB,
    )
    evening_decision = orch.submit_advance(
        evening,
        SyntheticCityTrace("residential").profile(
            30.0, n_days=1, rng=streams.stream("evening")
        ),
        start_time=18.0 * HOUR,
    )
    # Day-time walk-ins through the broker (mixed land uses/verticals).
    walk_ins = []
    for i, (hour, land_use, stype, mbps) in enumerate(
        [
            (1.0, "office", ServiceType.EMBB, 15.0),
            (2.0, "transport", ServiceType.AUTOMOTIVE, 8.0),
            (3.0, "residential", ServiceType.EHEALTH, 6.0),
            (4.0, "office", ServiceType.URLLC, 4.0),
            (6.0, "residential", ServiceType.EMBB, 18.0),
            (9.0, "office", ServiceType.MMTC, 3.0),
        ]
    ):
        request = make_request(
            throughput_mbps=mbps,
            duration_s=10 * HOUR,
            service_type=stype,
            max_latency_ms=10.0 if stype is ServiceType.URLLC else 60.0,
        )
        walk_ins.append(request)
        profile = SyntheticCityTrace(land_use).profile(
            mbps, n_days=1, rng=streams.stream(f"trace-{i}")
        )
        sim.schedule_at(hour * HOUR, lambda r=request, p=profile: broker.submit(r, p))
    # A link-failure window at midday; self-healing should absorb it.
    topo = testbed.transport.topology
    sim.schedule_at(12.0 * HOUR, lambda: topo.link("enb1-mmwave-fwd").fail())
    sim.schedule_at(12.5 * HOUR, lambda: topo.link("enb1-mmwave-fwd").restore())
    # Rescale the first walk-in mid-life.
    sim.schedule_at(
        7.0 * HOUR,
        lambda: orch.modify_slice(
            walk_ins[0].request_id.replace("req-", "slice-"), 20.0
        ),
    )
    sim.run_until(23.0 * HOUR)
    return testbed, orch, broker, evening, evening_decision, walk_ins


class TestSoak:
    def test_advance_booking_honoured(self, soak_run):
        _, orch, _, evening, decision, _ = soak_run
        assert decision.admitted
        state = orch.slice(evening.request_id.replace("req-", "slice-")).state
        assert state in (SliceState.ACTIVE, SliceState.EXPIRED)

    def test_every_slice_in_legal_state(self, soak_run):
        _, orch, _, _, _, _ = soak_run
        for network_slice in orch.all_slices():
            assert network_slice.state in (
                SliceState.ACTIVE,
                SliceState.DEPLOYING,
                SliceState.EXPIRED,
                SliceState.REJECTED,
            )

    def test_no_physical_overcommit(self, soak_run):
        testbed, _, _, _, _, _ = soak_run
        for enb in testbed.ran.enbs():
            enb.grid.check_invariants()
        for link in testbed.transport.topology.links():
            assert link.effective_reserved_mbps <= link.capacity_mbps + 1e-6
        for dc in testbed.cloud.datacenters():
            for node in dc.nodes():
                node.check_invariants()

    def test_ledger_consistent(self, soak_run):
        _, orch, _, _, _, _ = soak_run
        ledger = orch.ledger
        assert ledger.net_revenue == pytest.approx(
            ledger.gross_revenue - ledger.total_penalties
        )
        assert ledger.admissions >= 4

    def test_adaptive_kept_violations_low(self, soak_run):
        _, orch, _, _, _, _ = soak_run
        assert orch.sla_monitor.violation_rate() < 0.15

    def test_rescale_applied(self, soak_run):
        _, orch, _, _, _, walk_ins = soak_run
        network_slice = orch.slice(walk_ins[0].request_id.replace("req-", "slice-"))
        # Rescaled at 7 h to 20 Mb/s (slice may have expired since; SLA
        # reflects the modification regardless).
        assert network_slice.request.sla.throughput_mbps == 20.0

    def test_self_healing_engaged_if_needed(self, soak_run):
        testbed, orch, _, _, _, _ = soak_run
        # If any active slice rode enb1's mmWave link at noon, it was
        # repaired; otherwise no repair was needed. Either way no slice
        # is stuck on a dead path now.
        for network_slice in orch.active_slices():
            path = network_slice.allocation.transport.path
            for lid in path.link_ids:
                assert testbed.transport.topology.link(lid).up

    def test_dashboard_renders_after_soak(self, soak_run):
        _, orch, _, _, _, _ = soak_run
        from repro.dashboard.dashboard import Dashboard

        rendered = Dashboard(orch).render()
        assert "multiplexing gain" in rendered
        assert orch.metrics.to_prometheus()

    def test_forecast_driven_reconfigurations_happened(self, soak_run):
        """At least one slice lived long enough for the forecaster to
        resize its effective reservation (expired runtimes are dropped,
        so check the recorded metric rather than live state)."""
        _, orch, _, _, _, _ = soak_run
        resized = orch.metrics.labels_of("slice.effective_fraction")
        assert resized


# ----------------------------------------------------------------------
# Multi-tenant concurrent churn through the batch install planner
# ----------------------------------------------------------------------

TENANTS = ("tenant-a", "tenant-b", "tenant-c")

#: Nightly-soak scale knobs (defaults match the per-push tier-1 run).
CHURN_CYCLES = int(os.environ.get("SOAK_CHURN_CYCLES", "6"))
BURST_SLICES = int(os.environ.get("SOAK_BURST_SLICES", "3"))


@pytest.fixture(scope="module")
def churn_run():
    """Admit/expire/heal cycles under bursty multi-tenant load: every
    2 h each tenant submits a burst into one broker window, the window
    flushes through the concurrent batch planner, and the 1.5 h slice
    lifetime frees the capacity before the next burst."""
    testbed = build_testbed(
        TestbedConfig(
            n_enbs=4,
            plmn_pool_size=max(24, 3 * len(TENANTS) * BURST_SLICES),
            edge_nodes=4,
            core_nodes=8,
        )
    )
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=OrchestratorConfig(
            monitoring_epoch_s=300.0,
            # Retain the whole run's feed, however hard the nightly
            # scale churns.
            event_log_capacity=max(16_384, 4_096 * CHURN_CYCLES),
        ),
        streams=RandomStreams(seed=7),
    )
    orch.start()
    broker = SliceBroker(orch, window_s=300.0, policy=KnapsackPolicy())
    submitted = []
    for cycle in range(CHURN_CYCLES):  # bursts at 0h, 2h, ..., (2N-2)h
        burst_time = cycle * 2 * HOUR + 1.0
        for tenant in TENANTS:
            for k in range(BURST_SLICES):
                request = make_request(
                    throughput_mbps=8.0 + 2.0 * (k % 3),
                    duration_s=1.5 * HOUR,
                    max_latency_ms=60.0,
                    tenant=tenant,
                    price=50.0 + 10.0 * (k % 3),
                )
                submitted.append(request)
                profile = ConstantProfile(
                    request.sla.throughput_mbps, level=0.5, noise_std=0.0
                )
                sim.schedule_at(
                    burst_time,
                    lambda r=request, p=profile: broker.submit(r, p),
                )
    # A link-failure window in the middle of the run; self-healing and
    # later bursts must both cope.
    topo = testbed.transport.topology
    midpoint = CHURN_CYCLES * HOUR  # middle of the 2h-per-cycle run
    sim.schedule_at(midpoint, lambda: topo.link("enb1-mmwave-fwd").fail())
    sim.schedule_at(midpoint + 0.5 * HOUR, lambda: topo.link("enb1-mmwave-fwd").restore())
    sim.run_until((2 * CHURN_CYCLES + 1) * HOUR)
    return testbed, orch, broker, submitted


class TestConcurrentChurn:
    def test_bursts_ran_through_the_batch_planner(self, churn_run):
        _, orch, _, _ = churn_run
        assert orch.planner.batches_run >= CHURN_CYCLES
        # Real fleet-scale batches, not degenerate single-slice loops.
        assert orch.planner.jobs_installed >= 2 * orch.planner.batches_run

    def test_churn_cycles_admitted_and_expired(self, churn_run):
        _, orch, _, submitted = churn_run
        states = [
            orch.slice(r.request_id.replace("req-", "slice-")).state
            for r in submitted
        ]
        # At least the baseline burst size per tenant must cycle all the
        # way to EXPIRED in (nearly) every cycle — oversize nightly
        # bursts may see knapsack losers, which is the point of churn.
        floor = len(TENANTS) * min(BURST_SLICES, 3) * max(1, CHURN_CYCLES - 2)
        assert states.count(SliceState.EXPIRED) >= floor
        # Churn means capacity was reusable: later bursts admitted too.
        assert orch.ledger.admissions >= floor

    def test_no_rollback_events_for_successful_installs(self, churn_run):
        """The deferred-rollback contract under concurrency: an install
        that ultimately succeeded must put zero ``driver.rollback``
        noise on the event feed (a retried candidate DC, for example,
        stays internal)."""
        _, orch, _, _ = churn_run
        events = orch.events.since(0)
        assert events[0].seq == 1, "event log overflowed; raise capacity"
        succeeded = set()
        for event in events:
            if event.event_type == "slice.admitted":
                succeeded.add(event.slice_id)
        for event in events:
            if event.event_type == "driver.rollback":
                assert event.slice_id not in succeeded, (
                    f"rollback event leaked for successful install "
                    f"{event.slice_id}"
                )

    def test_every_tenant_served(self, churn_run):
        _, orch, _, submitted = churn_run
        admitted_tenants = {
            r.tenant_id
            for r in submitted
            if orch.slice(r.request_id.replace("req-", "slice-")).state
            in (SliceState.ACTIVE, SliceState.EXPIRED, SliceState.DEPLOYING)
        }
        assert admitted_tenants == set(TENANTS)

    def test_no_physical_residue_after_churn(self, churn_run):
        testbed, orch, _, _ = churn_run
        for enb in testbed.ran.enbs():
            enb.grid.check_invariants()
        for link in testbed.transport.topology.links():
            assert link.effective_reserved_mbps <= link.capacity_mbps + 1e-6
        for dc in testbed.cloud.datacenters():
            for node in dc.nodes():
                node.check_invariants()
        # Every driver's reservation table matches the live slices.
        live = {s.slice_id for s in orch.live_slices()}
        for driver in orch.registry:
            tracked = {r.slice_id for r in driver.reservations()}
            assert tracked <= live, f"{driver.domain} leaked {tracked - live}"

    def test_healing_survived_the_burst_storm(self, churn_run):
        testbed, orch, _, _ = churn_run
        for network_slice in orch.active_slices():
            if network_slice.allocation is None:
                continue
            for lid in network_slice.allocation.transport.path.link_ids:
                assert testbed.transport.topology.link(lid).up


# ----------------------------------------------------------------------
# Control-plane observability under soak load
# ----------------------------------------------------------------------


class TestSoakObservability:
    """With ``REPRO_OBS_ENABLED=1`` (how the nightly soak runs), the
    churn scenario must leave the tracer settled — every span closed,
    nothing leaked across thousands of planner-thread hops — and the
    run's metrics/slow-trace snapshot is exported as a CI artifact
    when ``SOAK_OBS_DIR`` points somewhere."""

    def test_tracer_settled_after_churn(self, churn_run):
        _, orch, _, _ = churn_run
        if not orch.obs.enabled:
            pytest.skip("observability disabled (set REPRO_OBS_ENABLED=1)")
        status = orch.obs.tracer.status()
        assert status["spans_started"] == status["spans_finished"]
        assert orch.obs.tracer.active_span_count == 0
        # The soak actually exercised the pipeline stages.
        summary = orch.obs.stage_summary(["admission", "driver.commit"])
        assert summary["admission"]["count"] > 0
        assert summary["driver.commit"]["count"] > 0

    def test_artifacts_dumped_for_ci(self, churn_run):
        out_dir = os.environ.get("SOAK_OBS_DIR")
        if not out_dir:
            pytest.skip("SOAK_OBS_DIR not set")
        _, orch, _, _ = churn_run
        if not orch.obs.enabled:
            pytest.skip("observability disabled (set REPRO_OBS_ENABLED=1)")
        import json as _json

        from repro.obs.export import render_prometheus

        os.makedirs(out_dir, exist_ok=True)
        metrics_path = os.path.join(out_dir, "metrics.prom")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(orch.obs, orch.metrics))
        traces_path = os.path.join(out_dir, "slow_traces.json")
        with open(traces_path, "w", encoding="utf-8") as fh:
            _json.dump(
                {
                    "tracer": orch.obs.tracer.status(),
                    "slow_spans": orch.obs.slow_spans(),
                    "traces": orch.obs.traces(limit=10),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        assert os.path.getsize(metrics_path) > 0
        assert os.path.getsize(traces_path) > 0
