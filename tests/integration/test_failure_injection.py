"""Failure-injection integration tests."""

from __future__ import annotations


from repro.core.orchestrator import Orchestrator
from repro.core.slices import SliceState
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


def build_orchestrator(testbed):
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=8),
    )
    orch.start()
    return sim, orch


class TestLinkFailures:
    def test_mmwave_down_reroutes_via_microwave(self, testbed):
        """With the fast link down, slices still deploy over µwave."""
        for enb in testbed.enbs:
            testbed.transport.topology.link(f"{enb.enb_id}-mmwave-fwd").fail()
            testbed.transport.topology.link(f"{enb.enb_id}-mmwave-rev").fail()
        sim, orch = build_orchestrator(testbed)
        request = make_request(throughput_mbps=15.0, max_latency_ms=60.0)
        decision = orch.submit(request, ConstantProfile(15.0, level=0.5))
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        path_links = orch.slice(slice_id).allocation.transport.path.link_ids
        assert any("uwave" in lid for lid in path_links)

    def test_all_uplinks_down_rejects(self, testbed):
        for enb in testbed.enbs:
            for prefix in ("mmwave", "uwave"):
                testbed.transport.topology.link(f"{enb.enb_id}-{prefix}-fwd").fail()
        sim, orch = build_orchestrator(testbed)
        request = make_request()
        decision = orch.submit(request, ConstantProfile(20.0, level=0.5))
        assert not decision.admitted
        # Nothing leaked: PLMN pool back to full.
        assert testbed.plmn_pool.available == testbed.plmn_pool.capacity

    def test_microwave_down_tightens_capacity(self, testbed):
        """µwave carries 400 Mb/s; losing it halves redundancy but mmWave
        still serves new slices."""
        testbed.transport.topology.link("enb1-uwave-fwd").fail()
        sim, orch = build_orchestrator(testbed)
        request = make_request(throughput_mbps=15.0)
        assert orch.submit(request, ConstantProfile(15.0, level=0.5)).admitted


class TestComputeExhaustion:
    def test_tiny_edge_and_core_reject_epc(self):
        testbed = build_testbed(
            TestbedConfig(edge_nodes=1, edge_vcpus_per_node=2, core_nodes=1, core_vcpus_per_node=2)
        )
        sim, orch = build_orchestrator(testbed)
        request = make_request()  # vEPC needs 6 vCPUs
        decision = orch.submit(request, ConstantProfile(20.0, level=0.5))
        assert not decision.admitted
        assert testbed.ran.serving_enb_of(request.request_id.replace("req-", "slice-")) is None

    def test_edge_fills_then_rejects_tight_latency(self):
        """Latency-tight slices need the edge DC; once it is full they are
        rejected even though the core has room."""
        testbed = build_testbed(
            TestbedConfig(edge_nodes=1, edge_vcpus_per_node=7)  # one vEPC (6 vCPUs)
        )
        sim, orch = build_orchestrator(testbed)
        first = make_request(throughput_mbps=5.0, max_latency_ms=8.0)
        assert orch.submit(first, ConstantProfile(5.0, level=0.5)).admitted
        second = make_request(throughput_mbps=5.0, max_latency_ms=8.0)
        assert not orch.submit(second, ConstantProfile(5.0, level=0.5)).admitted
        # A latency-relaxed request still goes to the core.
        third = make_request(throughput_mbps=5.0, max_latency_ms=80.0)
        assert orch.submit(third, ConstantProfile(5.0, level=0.5)).admitted


class TestPlmnExhaustion:
    def test_pool_limits_concurrent_slices(self):
        testbed = build_testbed(TestbedConfig(plmn_pool_size=2))
        sim, orch = build_orchestrator(testbed)
        outcomes = []
        for _ in range(3):
            request = make_request(throughput_mbps=5.0, duration_s=600.0)
            outcomes.append(
                orch.submit(request, ConstantProfile(5.0, level=0.3)).admitted
            )
        assert outcomes == [True, True, False]
        # After one expires, the PLMN is reusable.
        sim.run_until(700.0)
        request = make_request(throughput_mbps=5.0)
        assert orch.submit(request, ConstantProfile(5.0, level=0.3)).admitted


class TestMidLifeLinkFailure:
    def test_active_slice_survives_bookkeeping_on_failure(self, testbed):
        """A link failing mid-life zeroes residuals but reservations and
        teardown still work (no crash, resources reclaimed)."""
        sim, orch = build_orchestrator(testbed)
        request = make_request(duration_s=600.0)
        orch.submit(request, ConstantProfile(20.0, level=0.5))
        sim.run_until(120.0)
        slice_id = request.request_id.replace("req-", "slice-")
        path_links = orch.slice(slice_id).allocation.transport.path.link_ids
        testbed.transport.topology.link(path_links[0]).fail()
        sim.run_until(700.0)
        assert orch.slice(slice_id).state is SliceState.EXPIRED
        testbed.transport.topology.link(path_links[0]).restore()
        assert testbed.transport.topology.link(path_links[0]).residual_mbps > 0
