"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator at t=0."""
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(42)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic random-stream registry."""
    return RandomStreams(seed=42)


@pytest.fixture
def testbed() -> Testbed:
    """The canonical Fig. 2 testbed."""
    return build_testbed(TestbedConfig())


def make_request(
    throughput_mbps: float = 20.0,
    max_latency_ms: float = 50.0,
    duration_s: float = 3_600.0,
    price: float = 100.0,
    penalty_rate: float = 1.0,
    service_type: ServiceType = ServiceType.EMBB,
    tenant: str = "tenant-a",
    arrival_time: float = 0.0,
    availability: float = 0.95,
    n_users: int = 10,
) -> SliceRequest:
    """Build a slice request with sensible defaults (test helper)."""
    return SliceRequest(
        tenant_id=tenant,
        service_type=service_type,
        sla=SLA(
            throughput_mbps=throughput_mbps,
            max_latency_ms=max_latency_ms,
            duration_s=duration_s,
            availability=availability,
        ),
        price=price,
        penalty_rate=penalty_rate,
        arrival_time=arrival_time,
        n_users=n_users,
    )


@pytest.fixture
def request_factory():
    """Expose :func:`make_request` as a fixture."""
    return make_request
