"""Tests for the control dashboard rendering."""

from __future__ import annotations

import json

import pytest

from repro.core.orchestrator import Orchestrator
from repro.dashboard.dashboard import Dashboard
from repro.dashboard.reports import format_table, gain_vs_penalty_report
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def dashboard(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=3),
    )
    orchestrator.start()
    request = make_request(tenant="mediclinic")
    orchestrator.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
    sim.run_until(120.0)
    return Dashboard(orchestrator)


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_numeric_right_alignment(self):
        table = format_table(["n"], [[1.0], [100.0]])
        lines = table.splitlines()
        assert lines[2].endswith("1.00")
        assert lines[3].endswith("100.00")

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestReports:
    def test_gain_report_contains_net(self):
        report = gain_vs_penalty_report(1.5, 100.0, 20.0, 0.03)
        assert "1.50x" in report
        assert "80.00" in report
        assert "3.00%" in report


class TestDashboard:
    def test_slice_table_lists_tenant(self, dashboard):
        assert "mediclinic" in dashboard.slice_table()

    def test_domain_panel_has_all_domains(self, dashboard):
        panel = dashboard.domain_panel()
        assert "ran" in panel and "transport" in panel and "cloud" in panel
        assert "#" in panel  # some load bar

    def test_headline_mentions_gain(self, dashboard):
        assert "multiplexing gain" in dashboard.headline()

    def test_render_combines_panels(self, dashboard):
        rendered = dashboard.render()
        assert "active slices: 1" in rendered
        assert "--- Domains ---" in rendered
        assert "--- Slices ---" in rendered

    def test_json_round_trip(self, dashboard):
        payload = json.loads(dashboard.to_json())
        assert payload["active"] == 1
