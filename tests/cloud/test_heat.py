"""Tests for Heat-style stack orchestration."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import CloudError, ComputeNode, Datacenter, DatacenterTier
from repro.cloud.flavors import flavor
from repro.cloud.heat import HeatStack, HeatTemplate, StackResource, StackState
from repro.cloud.placement import BestFitPlacement


def template(n: int = 2):
    return HeatTemplate(
        name="t",
        resources=tuple(
            StackResource(f"vm{i}", flavor("m1.medium")) for i in range(n)
        ),
    )


def datacenter(vcpus: int = 8):
    return Datacenter(
        "dc", DatacenterTier.EDGE, nodes=[ComputeNode("n1", vcpus=vcpus)]
    )


def test_template_aggregates():
    t = template(3)
    assert t.total_vcpus == 6
    assert t.total_ram_gb == pytest.approx(12.0)
    assert len(t.flavors()) == 3


def test_empty_template_rejected():
    with pytest.raises(CloudError):
        HeatTemplate(name="empty", resources=())


def test_create_boots_all_vms():
    stack = HeatStack(template(2), datacenter())
    stack.create(BestFitPlacement())
    assert stack.state is StackState.CREATE_COMPLETE
    assert len(stack.vms) == 2
    assert stack.vm("vm0").node_id == "n1"


def test_create_failure_is_atomic():
    dc = datacenter(vcpus=3)  # template needs 4
    stack = HeatStack(template(2), dc)
    with pytest.raises(CloudError):
        stack.create(BestFitPlacement())
    assert stack.state is StackState.CREATE_FAILED
    assert dc.free_vcpus == 3


def test_double_create_rejected():
    stack = HeatStack(template(1), datacenter())
    stack.create(BestFitPlacement())
    with pytest.raises(CloudError):
        stack.create(BestFitPlacement())


def test_delete_reclaims_resources():
    dc = datacenter()
    stack = HeatStack(template(2), dc)
    stack.create(BestFitPlacement())
    stack.delete()
    assert stack.state is StackState.DELETE_COMPLETE
    assert dc.free_vcpus == 8


def test_delete_is_idempotent():
    stack = HeatStack(template(1), datacenter())
    stack.create(BestFitPlacement())
    stack.delete()
    stack.delete()


def test_unknown_vm_rejected():
    stack = HeatStack(template(1), datacenter())
    stack.create(BestFitPlacement())
    with pytest.raises(CloudError):
        stack.vm("ghost")


def test_stack_ids_unique():
    a = HeatStack(template(1), datacenter())
    b = HeatStack(template(1), datacenter())
    assert a.stack_id != b.stack_id


def test_owner_prefix_on_vm_names():
    stack = HeatStack(template(1), datacenter(), owner="slice-42")
    stack.create(BestFitPlacement())
    assert stack.vm("vm0").name.startswith("slice-42")
