"""Tests for the cloud domain controller."""

from __future__ import annotations

import pytest

from repro.cloud.controller import CloudController
from repro.cloud.datacenter import CloudError, ComputeNode, Datacenter, DatacenterTier
from repro.cloud.flavors import flavor
from repro.cloud.heat import HeatTemplate, StackResource


def make_controller(edge_vcpus: int = 8, core_vcpus: int = 32):
    edge = Datacenter(
        "edge", DatacenterTier.EDGE, nodes=[ComputeNode("e1", vcpus=edge_vcpus)]
    )
    core = Datacenter(
        "core", DatacenterTier.CORE, nodes=[ComputeNode("c1", vcpus=core_vcpus)]
    )
    return CloudController([edge, core])


def template(n: int = 2):
    return HeatTemplate(
        name="t",
        resources=tuple(StackResource(f"vm{i}", flavor("m1.medium")) for i in range(n)),
    )


def test_needs_datacenters():
    with pytest.raises(CloudError):
        CloudController([])


def test_duplicate_dc_rejected():
    dc = Datacenter("x", DatacenterTier.EDGE, nodes=[ComputeNode("n1")])
    dc2 = Datacenter("x", DatacenterTier.CORE, nodes=[ComputeNode("n2")])
    with pytest.raises(CloudError):
        CloudController([dc, dc2])


def test_tier_filter():
    controller = make_controller()
    assert [dc.dc_id for dc in controller.datacenters(DatacenterTier.EDGE)] == ["edge"]


def test_feasible_dcs():
    controller = make_controller(edge_vcpus=2)
    feasible = controller.feasible_dcs(template(2))  # needs 4 vCPUs
    assert [dc.dc_id for dc in feasible] == ["core"]


def test_deploy_and_teardown():
    controller = make_controller()
    allocation = controller.deploy("s1", template(2), "edge")
    assert allocation.dc_id == "edge"
    assert allocation.vcpus == 4
    assert controller.stack_of("s1") is not None
    controller.teardown("s1")
    assert controller.stack_of("s1") is None
    assert controller.datacenter("edge").free_vcpus == 8


def test_deploy_duplicate_rejected():
    controller = make_controller()
    controller.deploy("s1", template(1), "edge")
    with pytest.raises(CloudError):
        controller.deploy("s1", template(1), "core")


def test_deploy_without_capacity_rejected():
    controller = make_controller(edge_vcpus=2)
    with pytest.raises(CloudError):
        controller.deploy("s1", template(2), "edge")
    assert controller.stack_of("s1") is None


def test_teardown_unknown_rejected():
    with pytest.raises(CloudError):
        make_controller().teardown("ghost")


def test_unknown_dc_rejected():
    with pytest.raises(CloudError):
        make_controller().datacenter("ghost")


def test_utilization():
    controller = make_controller()
    controller.deploy("s1", template(1), "core")
    snap = controller.utilization()
    assert snap["domain"] == "cloud"
    assert snap["active_stacks"] == 1
    assert snap["total_vcpus"] == 40
    assert snap["free_vcpus"] == 38
