"""Tests for compute nodes, VMs and datacenters."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import (
    CloudError,
    ComputeNode,
    Datacenter,
    DatacenterTier,
    VirtualMachine,
    VmState,
)
from repro.cloud.flavors import Flavor, flavor


class TestFlavors:
    def test_presets_exist(self):
        assert flavor("m1.small").vcpus == 1
        assert flavor("m1.medium").vcpus == 2

    def test_unknown_flavor_rejected(self):
        with pytest.raises(KeyError):
            flavor("m1.gigantic")

    def test_invalid_flavor_rejected(self):
        with pytest.raises(ValueError):
            Flavor("bad", vcpus=0, ram_gb=1, disk_gb=1)

    def test_fits_within(self):
        f = flavor("m1.medium")
        assert f.fits_within(2, 4.0, 40.0)
        assert not f.fits_within(1, 4.0, 40.0)


class TestVm:
    def test_lifecycle(self):
        vm = VirtualMachine("mme", flavor("m1.small"))
        assert vm.state is VmState.BUILDING
        vm.activate()
        assert vm.state is VmState.ACTIVE
        vm.delete()
        assert vm.state is VmState.DELETED

    def test_double_activate_rejected(self):
        vm = VirtualMachine("mme", flavor("m1.small"))
        vm.activate()
        with pytest.raises(CloudError):
            vm.activate()

    def test_vm_ids_unique(self):
        a = VirtualMachine("x", flavor("m1.tiny"))
        b = VirtualMachine("x", flavor("m1.tiny"))
        assert a.vm_id != b.vm_id


class TestComputeNode:
    def test_boot_accounts_resources(self):
        node = ComputeNode("n1", vcpus=4, ram_gb=8.0, disk_gb=100.0)
        vm = VirtualMachine("x", flavor("m1.medium"))
        node.boot(vm)
        assert node.used_vcpus == 2
        assert node.free_vcpus == 2
        assert vm.state is VmState.ACTIVE
        assert vm.node_id == "n1"

    def test_boot_beyond_capacity_rejected(self):
        node = ComputeNode("n1", vcpus=1, ram_gb=1.0, disk_gb=10.0)
        with pytest.raises(CloudError):
            node.boot(VirtualMachine("x", flavor("m1.medium")))

    def test_destroy_reclaims(self):
        node = ComputeNode("n1", vcpus=4, ram_gb=8.0, disk_gb=100.0)
        vm = VirtualMachine("x", flavor("m1.medium"))
        node.boot(vm)
        node.destroy(vm.vm_id)
        assert node.used_vcpus == 0
        assert vm.state is VmState.DELETED

    def test_destroy_unknown_rejected(self):
        with pytest.raises(CloudError):
            ComputeNode("n1").destroy("ghost")

    def test_invariants_hold(self):
        node = ComputeNode("n1", vcpus=4, ram_gb=8.0, disk_gb=100.0)
        node.boot(VirtualMachine("x", flavor("m1.medium")))
        node.check_invariants()

    def test_bad_capacity_rejected(self):
        with pytest.raises(CloudError):
            ComputeNode("n1", vcpus=0)


class TestDatacenter:
    def test_aggregates(self):
        dc = Datacenter(
            "dc1",
            DatacenterTier.EDGE,
            nodes=[ComputeNode("n1", vcpus=8), ComputeNode("n2", vcpus=8)],
        )
        assert dc.total_vcpus == 16
        assert dc.free_vcpus == 16

    def test_needs_nodes(self):
        with pytest.raises(CloudError):
            Datacenter("dc1", DatacenterTier.EDGE, nodes=[])

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(CloudError):
            Datacenter(
                "dc1",
                DatacenterTier.EDGE,
                nodes=[ComputeNode("n1"), ComputeNode("n1")],
            )

    def test_can_host_flavors_ffd(self):
        dc = Datacenter(
            "dc1",
            DatacenterTier.EDGE,
            nodes=[ComputeNode("n1", vcpus=4, ram_gb=8.0, disk_gb=200.0)],
        )
        assert dc.can_host_flavors([flavor("m1.medium"), flavor("m1.medium")])
        assert not dc.can_host_flavors([flavor("m1.medium")] * 3)

    def test_can_host_does_not_mutate(self):
        dc = Datacenter("dc1", DatacenterTier.EDGE, nodes=[ComputeNode("n1", vcpus=4)])
        dc.can_host_flavors([flavor("m1.medium")])
        assert dc.free_vcpus == 4

    def test_unknown_node_rejected(self):
        dc = Datacenter("dc1", DatacenterTier.EDGE, nodes=[ComputeNode("n1")])
        with pytest.raises(CloudError):
            dc.node("ghost")

    def test_utilization_snapshot(self):
        dc = Datacenter("dc1", DatacenterTier.CORE, nodes=[ComputeNode("n1", vcpus=8)])
        snap = dc.utilization()
        assert snap["tier"] == "core"
        assert snap["total_vcpus"] == 8
