"""Tests for VM placement policies."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import ComputeNode, VirtualMachine
from repro.cloud.flavors import flavor
from repro.cloud.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementError,
    WorstFitPlacement,
)


def nodes():
    """One half-full node and one empty node."""
    half = ComputeNode("half", vcpus=8)
    half.boot(VirtualMachine("pre", flavor("m1.large")))  # 4 vCPUs used
    empty = ComputeNode("empty", vcpus=8)
    return [half, empty]


def test_first_fit_takes_inventory_order():
    chosen = FirstFitPlacement().choose_node(nodes(), flavor("m1.medium"))
    assert chosen.node_id == "half"


def test_best_fit_consolidates():
    chosen = BestFitPlacement().choose_node(nodes(), flavor("m1.medium"))
    assert chosen.node_id == "half"


def test_worst_fit_spreads():
    chosen = WorstFitPlacement().choose_node(nodes(), flavor("m1.medium"))
    assert chosen.node_id == "empty"


def test_none_when_nothing_fits():
    tiny = [ComputeNode("n1", vcpus=1, ram_gb=1.0, disk_gb=5.0)]
    assert BestFitPlacement().choose_node(tiny, flavor("m1.xlarge")) is None


def test_place_all_boots_everything():
    ns = nodes()
    vms = [VirtualMachine(f"vm{i}", flavor("m1.medium")) for i in range(4)]
    chosen = BestFitPlacement().place_all(ns, vms)
    assert len(chosen) == 4
    assert all(vm.node_id is not None for vm in vms)


def test_place_all_atomic_rollback():
    ns = [ComputeNode("n1", vcpus=4)]
    vms = [VirtualMachine(f"vm{i}", flavor("m1.medium")) for i in range(3)]  # needs 6
    with pytest.raises(PlacementError):
        BestFitPlacement().place_all(ns, vms)
    assert ns[0].used_vcpus == 0  # nothing leaked


def test_best_fit_fills_node_before_spilling():
    ns = nodes()
    policy = BestFitPlacement()
    placed = []
    for _ in range(3):
        vm = VirtualMachine("x", flavor("m1.medium"))
        node = policy.choose_node(ns, vm.flavor)
        node.boot(vm)
        placed.append(node.node_id)
    assert placed == ["half", "half", "empty"]
