"""Tests for the end-to-end orchestrator."""

from __future__ import annotations

import pytest

from repro.core.admission import FcfsPolicy
from repro.core.orchestrator import Orchestrator, OrchestratorConfig, OrchestratorError
from repro.core.overbooking import AdaptiveOverbooking, FixedOverbooking, NoOverbooking
from repro.core.slices import SliceState
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def orchestrator(testbed):
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        admission=FcfsPolicy(),
        overbooking=NoOverbooking(),
        config=OrchestratorConfig(monitoring_epoch_s=60.0, deploy_time_s=3.0),
        streams=RandomStreams(seed=1),
    )
    orch.start()
    return orch


def submit(orch, **kwargs):
    request = make_request(arrival_time=orch.sim.now, **kwargs)
    profile = ConstantProfile(request.sla.throughput_mbps, level=0.5, noise_std=0.0)
    decision = orch.submit(request, profile)
    return request, decision


class TestSubmission:
    def test_admitted_slice_reaches_active(self, orchestrator):
        request, decision = submit(orchestrator)
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        assert orchestrator.slice(slice_id).state is SliceState.DEPLOYING
        orchestrator.sim.run_until(10.0)
        assert orchestrator.slice(slice_id).state is SliceState.ACTIVE
        assert orchestrator.slice(slice_id).plmn is not None

    def test_rejected_request_books_rejection(self, orchestrator):
        request, decision = submit(orchestrator, throughput_mbps=500.0)
        assert not decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        assert orchestrator.slice(slice_id).state is SliceState.REJECTED
        assert orchestrator.ledger.rejections == 1

    def test_admission_books_revenue(self, orchestrator):
        submit(orchestrator, price=77.0)
        assert orchestrator.ledger.gross_revenue == 77.0

    def test_slice_expires_after_duration(self, orchestrator):
        request, _ = submit(orchestrator, duration_s=120.0)
        slice_id = request.request_id.replace("req-", "slice-")
        orchestrator.sim.run_until(200.0)
        network_slice = orchestrator.slice(slice_id)
        assert network_slice.state is SliceState.EXPIRED
        # Resources returned.
        assert orchestrator.allocator.ran.serving_enb_of(slice_id) is None
        assert orchestrator.plmn_pool.available == orchestrator.plmn_pool.capacity

    def test_plmn_pool_bound_rejects(self, testbed):
        from repro.core.slices import PlmnPool

        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=1),
            streams=RandomStreams(seed=1),
        )
        orch.start()
        _, first = submit(orch, throughput_mbps=5.0)
        _, second = submit(orch, throughput_mbps=5.0)
        assert first.admitted and not second.admitted
        assert "PLMN" in second.reason

    def test_unknown_slice_lookup_raises(self, orchestrator):
        with pytest.raises(OrchestratorError):
            orchestrator.slice("slice-999999")


class TestAdmissionQueue:
    """The epoch-drained admission queue over the batch planner."""

    def test_enqueued_admissions_install_on_the_next_epoch(self, orchestrator):
        decisions = []
        requests = []
        for i in range(3):
            request = make_request(throughput_mbps=8.0 + i)
            requests.append(request)
            orchestrator.enqueue_admitted(
                request,
                ConstantProfile(request.sla.throughput_mbps, level=0.5, noise_std=0.0),
                on_decision=decisions.append,
            )
        assert orchestrator.pending_installs == 3
        assert decisions == []  # nothing installs before the epoch fires
        orchestrator.sim.run_until(61.0)
        assert orchestrator.pending_installs == 0
        assert len(decisions) == 3
        assert all(d.admitted for d in decisions)
        assert orchestrator.planner.batches_run == 1
        assert orchestrator.planner.jobs_installed == 3
        for request in requests:
            slice_id = request.request_id.replace("req-", "slice-")
            assert orchestrator.slice(slice_id).state in (
                SliceState.DEPLOYING,
                SliceState.ACTIVE,
            )

    def test_queued_failure_books_rejection_and_fires_callback(self, orchestrator):
        decisions = []
        request = make_request(throughput_mbps=500.0)  # beyond any cell
        orchestrator.enqueue_admitted(
            request,
            ConstantProfile(500.0, level=0.5, noise_std=0.0),
            on_decision=decisions.append,
        )
        orchestrator.sim.run_until(61.0)
        assert len(decisions) == 1
        assert not decisions[0].admitted
        slice_id = request.request_id.replace("req-", "slice-")
        assert orchestrator.slice(slice_id).state is SliceState.REJECTED
        # Zero residue anywhere.
        for driver in orchestrator.registry:
            assert driver.reservation_of(slice_id) is None


class TestMonitoring:
    def test_epochs_record_demand_and_delivery(self, orchestrator):
        request, _ = submit(orchestrator)
        slice_id = request.request_id.replace("req-", "slice-")
        orchestrator.sim.run_until(300.0)
        history = orchestrator.collector.demand_history(slice_id)
        assert len(history) >= 4
        runtime = orchestrator.runtime(slice_id)
        assert runtime.last_delivered_mbps > 0

    def test_no_violations_without_overbooking(self, orchestrator):
        submit(orchestrator)
        orchestrator.sim.run_until(600.0)
        assert orchestrator.sla_monitor.violation_rate() == 0.0

    def test_gain_tracked_each_epoch(self, orchestrator):
        submit(orchestrator)
        orchestrator.sim.run_until(300.0)
        assert len(orchestrator.gain_tracker.series) >= 4

    def test_active_slices_listing(self, orchestrator):
        submit(orchestrator)
        submit(orchestrator, throughput_mbps=10.0)
        orchestrator.sim.run_until(10.0)
        assert len(orchestrator.active_slices()) == 2


class TestOverbookingLoop:
    def test_fixed_overbooking_shrinks_commitment_at_admission(self, testbed):
        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            overbooking=FixedOverbooking(factor=2.0),
            streams=RandomStreams(seed=1),
        )
        orch.start()
        request, decision = submit(orch, throughput_mbps=40.0)
        assert decision.admitted
        sim.run_until(10.0)
        slice_id = request.request_id.replace("req-", "slice-")
        allocation = orch.slice(slice_id).allocation
        assert allocation.ran.effective_prbs < allocation.ran.nominal_prbs

    def test_reconfiguration_shrinks_idle_slice(self, testbed):
        """A slice at 30% load should get resized below nominal once the
        forecaster has history."""
        from repro.core.overbooking import ForecastOverbooking

        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            overbooking=ForecastOverbooking(quantile=0.9),
            config=OrchestratorConfig(
                monitoring_epoch_s=60.0,
                reconfig_every_epochs=3,
                min_history_for_forecast=6,
            ),
            streams=RandomStreams(seed=1),
        )
        orch.start()
        request = make_request(throughput_mbps=40.0, duration_s=7_200.0)
        profile = ConstantProfile(40.0, level=0.3, noise_std=0.02)
        decision = orch.submit(request, profile)
        assert decision.admitted
        sim.run_until(3_600.0)
        slice_id = request.request_id.replace("req-", "slice-")
        runtime = orch.runtime(slice_id)
        assert runtime.effective_fraction < 1.0
        allocation = orch.slice(slice_id).allocation
        assert allocation.ran.effective_prbs < allocation.ran.nominal_prbs

    def test_adaptive_policy_receives_observations(self, testbed):
        sim = Simulator()
        policy = AdaptiveOverbooking(violation_budget=0.05)
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            overbooking=policy,
            streams=RandomStreams(seed=1),
        )
        orch.start()
        request = make_request(duration_s=1_000.0)
        orch.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
        sim.run_until(600.0)
        assert policy._epochs > 0


class TestUeSimulation:
    def test_ues_attach_when_enabled(self, testbed):
        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            config=OrchestratorConfig(simulate_ues=True, max_ues_per_slice=4),
            streams=RandomStreams(seed=1),
        )
        orch.start()
        request = make_request(n_users=10)
        orch.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
        sim.run_until(10.0)
        slice_id = request.request_id.replace("req-", "slice-")
        runtime = orch.runtime(slice_id)
        assert len(runtime.ues) == 4
        assert any(ue.attached for ue in runtime.ues)
        assert runtime.epc is not None
        assert runtime.epc.active_sessions >= 1

    def test_ues_detach_on_expiry(self, testbed):
        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            config=OrchestratorConfig(simulate_ues=True, max_ues_per_slice=2),
            streams=RandomStreams(seed=1),
        )
        orch.start()
        request = make_request(duration_s=60.0)
        orch.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
        sim.run_until(10.0)
        slice_id = request.request_id.replace("req-", "slice-")
        ues = orch.runtime(slice_id).ues
        sim.run_until(120.0)
        assert all(not ue.attached for ue in ues)


class TestSnapshot:
    def test_snapshot_structure(self, orchestrator):
        submit(orchestrator)
        orchestrator.sim.run_until(120.0)
        snapshot = orchestrator.snapshot()
        assert snapshot["active"] == 1
        assert snapshot["ledger"]["admissions"] == 1
        assert {"ran", "transport", "cloud"} <= set(snapshot["domains"])
        assert snapshot["multiplexing_gain"] > 0

    def test_snapshot_is_json_safe(self, orchestrator):
        import json

        submit(orchestrator)
        orchestrator.sim.run_until(120.0)
        assert json.dumps(orchestrator.snapshot())
