"""Tests for the resource calendar and advance reservations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import ResourceVector
from repro.core.calendar import Booking, CalendarError, ResourceCalendar
from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.core.slices import SliceState
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


CAP = ResourceVector(prbs=100.0, mbps=100.0, vcpus=10.0)


def vec(prbs=10.0, mbps=10.0, vcpus=1.0):
    return ResourceVector(prbs=prbs, mbps=mbps, vcpus=vcpus)


class TestBooking:
    def test_active_interval_half_open(self):
        booking = Booking("b", 10.0, 20.0, vec())
        assert not booking.active_at(9.9)
        assert booking.active_at(10.0)
        assert booking.active_at(19.999)
        assert not booking.active_at(20.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(CalendarError):
            Booking("b", 10.0, 10.0, vec())


class TestCalendar:
    def test_usage_sums_overlapping(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 0.0, 100.0, vec(prbs=30.0))
        calendar.commit("b", 50.0, 150.0, vec(prbs=40.0))
        assert calendar.usage_at(25.0).prbs == 30.0
        assert calendar.usage_at(75.0).prbs == 70.0
        assert calendar.usage_at(125.0).prbs == 40.0

    def test_peak_over_window(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 0.0, 100.0, vec(prbs=30.0))
        calendar.commit("b", 50.0, 150.0, vec(prbs=40.0))
        assert calendar.peak_usage(0.0, 200.0).prbs == 70.0
        assert calendar.peak_usage(100.0, 200.0).prbs == 40.0

    def test_fits_respects_peak(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 0.0, 100.0, vec(prbs=60.0))
        assert calendar.fits(vec(prbs=40.0), 0.0, 50.0)
        assert not calendar.fits(vec(prbs=41.0), 0.0, 50.0)
        assert calendar.fits(vec(prbs=90.0), 100.0, 200.0)  # after expiry

    def test_duplicate_booking_rejected(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 0.0, 10.0, vec())
        with pytest.raises(CalendarError):
            calendar.commit("a", 20.0, 30.0, vec())

    def test_release(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 0.0, 10.0, vec(prbs=50.0))
        calendar.release("a")
        assert calendar.usage_at(5.0).prbs == 0.0
        with pytest.raises(CalendarError):
            calendar.release("a")

    def test_prune(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("old", 0.0, 10.0, vec())
        calendar.commit("current", 0.0, 100.0, vec())
        assert calendar.prune_before(50.0) == 1
        assert calendar.has("current") and not calendar.has("old")

    def test_bookings_ordered(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("late", 50.0, 60.0, vec())
        calendar.commit("early", 0.0, 10.0, vec())
        assert [b.booking_id for b in calendar.bookings()] == ["early", "late"]

    def test_utilization_profile(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 10.0, 30.0, vec(prbs=20.0))
        profile = calendar.utilization_profile(0.0, 40.0, 10.0)
        assert [usage.prbs for _, usage in profile] == [0.0, 20.0, 20.0, 0.0]
        with pytest.raises(CalendarError):
            calendar.utilization_profile(0.0, 10.0, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        bookings=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),  # start
                st.floats(min_value=0.1, max_value=100.0),  # duration
                st.floats(min_value=0.1, max_value=50.0),  # prbs
            ),
            max_size=12,
        ),
        window=st.tuples(
            st.floats(min_value=0.0, max_value=150.0),
            st.floats(min_value=0.1, max_value=100.0),
        ),
    )
    def test_property_peak_dominates_point_usage(self, bookings, window):
        calendar = ResourceCalendar(CAP)
        for i, (start, duration, prbs) in enumerate(bookings):
            calendar.commit(f"b{i}", start, start + duration, vec(prbs=prbs))
        w_start, w_len = window
        peak = calendar.peak_usage(w_start, w_start + w_len)
        for k in range(10):
            t = w_start + w_len * k / 10.0
            assert calendar.usage_at(t).prbs <= peak.prbs + 1e-9


class TestAdvanceReservations:
    @pytest.fixture
    def orch(self, testbed):
        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=11),
        )
        orchestrator.start()
        return sim, orchestrator

    def test_booking_installs_at_start_time(self, orch):
        sim, orchestrator = orch
        request = make_request(duration_s=600.0)
        decision = orchestrator.submit_advance(
            request, ConstantProfile(20.0, level=0.5), start_time=1_000.0
        )
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        sim.run_until(500.0)
        with pytest.raises(Exception):
            orchestrator.slice(slice_id)  # not created yet
        sim.run_until(1_100.0)
        assert orchestrator.slice(slice_id).state is SliceState.ACTIVE

    def test_past_start_rejected(self, orch):
        sim, orchestrator = orch
        sim.run_until(100.0)
        with pytest.raises(OrchestratorError):
            orchestrator.submit_advance(
                make_request(), ConstantProfile(20.0), start_time=50.0
            )

    def test_overlapping_bookings_capacity_checked(self, orch):
        """Bookings whose windows overlap must jointly fit; a third that
        pushes the window over capacity is refused even though the
        network is empty *now*."""
        sim, orchestrator = orch
        outcomes = []
        for _ in range(3):
            request = make_request(throughput_mbps=40.0, duration_s=3_600.0)
            outcomes.append(
                orchestrator.submit_advance(
                    request, ConstantProfile(40.0, level=0.5), start_time=5_000.0
                ).admitted
            )
        # 40 Mb/s ⇒ 82 PRBs; aggregate 200 ⇒ two fit, the third does not.
        assert outcomes == [True, True, False]

    def test_nonoverlapping_bookings_all_accepted(self, orch):
        sim, orchestrator = orch
        for i in range(3):
            request = make_request(throughput_mbps=40.0, duration_s=1_000.0)
            decision = orchestrator.submit_advance(
                request,
                ConstantProfile(40.0, level=0.5),
                start_time=5_000.0 + i * 2_000.0,
            )
            assert decision.admitted

    def test_immediate_submit_respects_future_booking(self, orch):
        """The paper's 'upcoming requests': an immediate slice that would
        collide with a promised booking is refused."""
        sim, orchestrator = orch
        # Promise most of the RAN to two future bookings.
        for _ in range(2):
            request = make_request(throughput_mbps=40.0, duration_s=7_200.0)
            assert orchestrator.submit_advance(
                request, ConstantProfile(40.0, level=0.5), start_time=600.0
            ).admitted
        # An immediate long-lived slice overlapping that window must not
        # cannibalize the promised capacity.
        request = make_request(throughput_mbps=40.0, duration_s=7_200.0)
        decision = orchestrator.submit(request, ConstantProfile(40.0, level=0.5))
        assert not decision.admitted
        assert "advance reservations" in decision.reason
        # A short immediate slice that ends before the bookings start is fine.
        request = make_request(throughput_mbps=40.0, duration_s=300.0)
        assert orchestrator.submit(request, ConstantProfile(40.0, level=0.5)).admitted

    def test_update_demand_keeps_window(self):
        calendar = ResourceCalendar(CAP)
        calendar.commit("a", 10.0, 20.0, vec(prbs=50.0))
        updated = calendar.update_demand("a", vec(prbs=20.0))
        assert (updated.start, updated.end) == (10.0, 20.0)
        assert calendar.usage_at(15.0).prbs == 20.0
        with pytest.raises(CalendarError):
            calendar.update_demand("ghost", vec())

    def test_calendar_shrinks_with_overbooking_reconfiguration(self, testbed):
        """Regression: the calendar must track *effective* commitments.
        After forecast-driven shrinkage, the calendar's booked demand for
        the slice drops, so newcomers are not vetoed by stale nominals."""
        from repro.core.orchestrator import OrchestratorConfig
        from repro.core.overbooking import ForecastOverbooking

        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            overbooking=ForecastOverbooking(quantile=0.9),
            config=OrchestratorConfig(
                monitoring_epoch_s=60.0,
                reconfig_every_epochs=2,
                min_history_for_forecast=5,
            ),
            streams=RandomStreams(seed=11),
        )
        orchestrator.start()
        request = make_request(throughput_mbps=40.0, duration_s=7_200.0)
        orchestrator.submit(request, ConstantProfile(40.0, level=0.25, noise_std=0.02))
        booked_before = orchestrator.calendar.usage_at(sim.now + 100.0).prbs
        sim.run_until(1_800.0)
        booked_after = orchestrator.calendar.usage_at(sim.now + 100.0).prbs
        assert booked_after < booked_before

    def test_calendar_released_on_expiry(self, orch):
        sim, orchestrator = orch
        request = make_request(duration_s=300.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        assert orchestrator.calendar.has(request.request_id)
        sim.run_until(500.0)
        assert not orchestrator.calendar.has(request.request_id)
