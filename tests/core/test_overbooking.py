"""Tests for the overbooking engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.forecasting import MovingAverageForecaster, NaiveForecaster
from repro.core.overbooking import (
    AdaptiveOverbooking,
    FixedOverbooking,
    ForecastOverbooking,
    MultiplexingGainTracker,
    NoOverbooking,
    OverbookingDecision,
    OverbookingError,
    SlaMonitor,
)


class TestDecision:
    def test_fraction(self):
        d = OverbookingDecision("s", nominal=10.0, effective=6.0)
        assert d.fraction == pytest.approx(0.6)

    def test_effective_above_nominal_rejected(self):
        with pytest.raises(OverbookingError):
            OverbookingDecision("s", nominal=10.0, effective=11.0)

    def test_zero_effective_rejected(self):
        with pytest.raises(OverbookingError):
            OverbookingDecision("s", nominal=10.0, effective=0.0)

    def test_nonpositive_nominal_rejected(self):
        with pytest.raises(OverbookingError):
            OverbookingDecision("s", nominal=0.0, effective=0.0)


class TestNoOverbooking:
    def test_commits_full_nominal(self):
        d = NoOverbooking().decide("s", 25.0)
        assert d.effective == 25.0
        assert d.fraction == 1.0

    def test_nonpositive_nominal_rejected(self):
        with pytest.raises(OverbookingError):
            NoOverbooking().decide("s", 0.0)


class TestFixedOverbooking:
    def test_divides_by_factor(self):
        d = FixedOverbooking(factor=2.0).decide("s", 10.0)
        assert d.effective == pytest.approx(5.0)

    def test_factor_one_is_no_overbooking(self):
        d = FixedOverbooking(factor=1.0).decide("s", 10.0)
        assert d.effective == pytest.approx(10.0)

    def test_factor_below_one_rejected(self):
        with pytest.raises(OverbookingError):
            FixedOverbooking(factor=0.5)

    def test_min_fraction_floor(self):
        d = FixedOverbooking(factor=100.0).decide("s", 10.0)
        assert d.effective >= 10.0 * FixedOverbooking.MIN_FRACTION


class TestForecastOverbooking:
    def test_cold_start_commits_nominal(self):
        d = ForecastOverbooking().decide("s", 10.0, forecaster=None)
        assert d.effective == 10.0

    def test_commits_forecast_quantile(self):
        forecaster = NaiveForecaster().fit([4.0] * 20)
        d = ForecastOverbooking(quantile=0.95).decide("s", 10.0, forecaster=forecaster)
        assert d.effective == pytest.approx(4.0, abs=0.5)

    def test_never_exceeds_nominal(self):
        forecaster = NaiveForecaster().fit([100.0] * 20)
        d = ForecastOverbooking().decide("s", 10.0, forecaster=forecaster)
        assert d.effective == 10.0

    def test_respects_min_fraction_floor(self):
        forecaster = NaiveForecaster().fit([0.001] * 20)
        d = ForecastOverbooking().decide("s", 10.0, forecaster=forecaster)
        assert d.effective >= 10.0 * ForecastOverbooking.MIN_FRACTION

    def test_bad_quantile_rejected(self):
        with pytest.raises(OverbookingError):
            ForecastOverbooking(quantile=1.0)

    def test_higher_quantile_commits_more(self):
        rng = np.random.default_rng(0)
        forecaster = MovingAverageForecaster(window=10).fit(5 + rng.normal(0, 1, 50))
        low = ForecastOverbooking(quantile=0.6).decide("s", 20.0, forecaster=forecaster)
        high = ForecastOverbooking(quantile=0.99).decide("s", 20.0, forecaster=forecaster)
        assert high.effective >= low.effective


class TestAdaptiveOverbooking:
    def test_violations_raise_quantile(self):
        policy = AdaptiveOverbooking(violation_budget=0.05, initial_quantile=0.9)
        q0 = policy.quantile
        for _ in range(10):
            policy.observe(violated=True)
        assert policy.quantile > q0

    def test_clean_epochs_lower_quantile(self):
        policy = AdaptiveOverbooking(violation_budget=0.05, initial_quantile=0.9)
        q0 = policy.quantile
        for _ in range(50):
            policy.observe(violated=False)
        assert policy.quantile < q0

    def test_quantile_stays_in_band(self):
        policy = AdaptiveOverbooking(violation_budget=0.0, initial_quantile=0.9, gain=10.0)
        for _ in range(100):
            policy.observe(violated=True)
        assert policy.quantile <= AdaptiveOverbooking.Q_MAX
        for _ in range(10_000):
            policy.observe(violated=False)
        assert policy.quantile >= AdaptiveOverbooking.Q_MIN

    def test_observed_rate(self):
        policy = AdaptiveOverbooking()
        policy.observe(True)
        policy.observe(False)
        assert policy.observed_violation_rate() == pytest.approx(0.5)

    def test_converges_near_budget(self):
        """Feed epochs whose violation chance rises as q falls; the
        controller should settle with an observed rate near budget."""
        rng = np.random.default_rng(1)
        policy = AdaptiveOverbooking(violation_budget=0.1, gain=0.3)
        for _ in range(3_000):
            # Lower q ⇒ more aggressive ⇒ higher violation probability.
            p_violation = max(0.0, (0.95 - policy.quantile)) * 0.8 + 0.02
            policy.observe(bool(rng.random() < p_violation))
        assert abs(policy.observed_violation_rate() - 0.1) < 0.05

    def test_bad_budget_rejected(self):
        with pytest.raises(OverbookingError):
            AdaptiveOverbooking(violation_budget=1.0)

    def test_decide_delegates_to_forecast_policy(self):
        forecaster = NaiveForecaster().fit([4.0] * 20)
        d = AdaptiveOverbooking().decide("s", 10.0, forecaster=forecaster)
        assert 0 < d.effective <= 10.0


class TestGainTracker:
    def test_gain_definition(self):
        assert MultiplexingGainTracker.gain(150.0, 100.0) == pytest.approx(1.5)

    def test_zero_capacity_gives_zero(self):
        assert MultiplexingGainTracker.gain(10.0, 0.0) == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(OverbookingError):
            MultiplexingGainTracker.gain(1.0, -1.0)

    def test_record_and_aggregates(self):
        tracker = MultiplexingGainTracker()
        tracker.record(0.0, 100.0, 100.0)
        tracker.record(1.0, 160.0, 100.0)
        assert tracker.peak_gain() == pytest.approx(1.6)
        assert tracker.mean_gain() == pytest.approx(1.3)

    def test_empty_tracker(self):
        tracker = MultiplexingGainTracker()
        assert tracker.peak_gain() == 0.0
        assert tracker.mean_gain() == 0.0


class TestSlaMonitor:
    def test_shortfall_is_violation(self):
        monitor = SlaMonitor()
        assert monitor.check_epoch("s", demand=10.0, delivered=5.0, nominal=10.0)

    def test_full_delivery_no_violation(self):
        monitor = SlaMonitor()
        assert not monitor.check_epoch("s", demand=10.0, delivered=10.0, nominal=10.0)

    def test_demand_above_nominal_not_violation(self):
        """Delivering the nominal is enough even when demand exceeds it."""
        monitor = SlaMonitor()
        assert not monitor.check_epoch("s", demand=20.0, delivered=10.0, nominal=10.0)

    def test_tolerance_absorbs_noise(self):
        monitor = SlaMonitor(tolerance=0.05)
        assert not monitor.check_epoch("s", demand=10.0, delivered=9.6, nominal=10.0)

    def test_rates(self):
        monitor = SlaMonitor()
        monitor.check_epoch("a", 10, 5, 10)
        monitor.check_epoch("a", 10, 10, 10)
        monitor.check_epoch("b", 10, 10, 10)
        assert monitor.violation_rate() == pytest.approx(1 / 3)
        assert monitor.violation_rate("a") == pytest.approx(0.5)
        assert monitor.violation_rate("b") == 0.0
        assert monitor.slices_monitored() == 2

    def test_unknown_slice_rate_is_zero(self):
        assert SlaMonitor().violation_rate("ghost") == 0.0

    def test_nonpositive_nominal_rejected(self):
        with pytest.raises(OverbookingError):
            SlaMonitor().check_epoch("s", 1.0, 1.0, 0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        demand=st.floats(min_value=0.0, max_value=1e3),
        delivered=st.floats(min_value=0.0, max_value=1e3),
        nominal=st.floats(min_value=0.1, max_value=1e3),
    )
    def test_delivering_entitlement_never_violates(self, demand, delivered, nominal):
        monitor = SlaMonitor()
        entitled = min(demand, nominal)
        violated = monitor.check_epoch("s", demand, max(delivered, entitled), nominal)
        assert not violated
