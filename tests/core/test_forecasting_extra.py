"""Tests for the extended forecaster family and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forecasting import (
    DriftForecaster,
    FORECASTER_REGISTRY,
    ForecastError,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    SimpleExpSmoothingForecaster,
    evaluate_forecaster,
    make_forecaster,
)


def diurnal(n_days=5, m=24, noise=2.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n_days * m)
    return 40 + 25 * np.sin(2 * np.pi * t / m) + rng.normal(0, noise, t.size)


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        season = [10.0, 20.0, 30.0, 40.0]
        f = SeasonalNaiveForecaster(season_length=4).fit(season * 3)
        assert f.forecast(1) == 10.0
        assert f.forecast(2) == 20.0
        assert f.forecast(4) == 40.0
        assert f.forecast(5) == 10.0  # wraps into the season

    def test_short_history_falls_back_to_naive(self):
        f = SeasonalNaiveForecaster(season_length=10).fit([3.0, 7.0])
        assert f.forecast(1) == 7.0

    def test_beats_naive_on_diurnal(self):
        series = diurnal()
        sn = evaluate_forecaster(SeasonalNaiveForecaster(season_length=24), series)
        naive = evaluate_forecaster(NaiveForecaster(), series)
        assert sn["mae"] < naive["mae"]

    def test_bad_season_rejected(self):
        with pytest.raises(ForecastError):
            SeasonalNaiveForecaster(season_length=1)


class TestSes:
    def test_constant_series(self):
        f = SimpleExpSmoothingForecaster(alpha=0.5).fit([5.0] * 20)
        assert f.forecast(1) == pytest.approx(5.0)
        assert f.forecast(9) == pytest.approx(5.0)

    def test_level_tracks_shift(self):
        f = SimpleExpSmoothingForecaster(alpha=0.5).fit([0.0] * 10 + [10.0] * 10)
        assert f.forecast(1) > 9.0

    def test_alpha_one_is_naive(self):
        series = [1.0, 5.0, 2.0, 8.0]
        ses = SimpleExpSmoothingForecaster(alpha=1.0).fit(series)
        naive = NaiveForecaster().fit(series)
        assert ses.forecast(1) == pytest.approx(naive.forecast(1))

    def test_bad_alpha_rejected(self):
        with pytest.raises(ForecastError):
            SimpleExpSmoothingForecaster(alpha=0.0)

    def test_smooths_noise_better_than_naive(self):
        rng = np.random.default_rng(2)
        series = 20 + rng.normal(0, 5, 300)
        ses = evaluate_forecaster(SimpleExpSmoothingForecaster(alpha=0.2), series)
        naive = evaluate_forecaster(NaiveForecaster(), series)
        assert ses["mae"] < naive["mae"]


class TestDrift:
    def test_extrapolates_linear_series(self):
        f = DriftForecaster().fit(np.arange(20, dtype=float))
        assert f.forecast(1) == pytest.approx(20.0)
        assert f.forecast(5) == pytest.approx(24.0)

    def test_single_point_has_zero_drift(self):
        f = DriftForecaster().fit([7.0])
        assert f.forecast(3) == 7.0

    def test_beats_naive_on_trend(self):
        rng = np.random.default_rng(1)
        series = np.arange(100, dtype=float) * 0.5 + rng.normal(0, 0.5, 100)
        drift = evaluate_forecaster(DriftForecaster(), series, horizon=5)
        naive = evaluate_forecaster(NaiveForecaster(), series, horizon=5)
        assert drift["mae"] < naive["mae"]


class TestRegistry:
    def test_every_name_constructs(self):
        for name in FORECASTER_REGISTRY:
            forecaster = make_forecaster(name)
            forecaster.fit(diurnal(n_days=3))
            assert forecaster.forecast(1) >= 0.0

    def test_kwargs_forwarded(self):
        forecaster = make_forecaster("holt-winters", season_length=48)
        assert isinstance(forecaster, HoltWintersForecaster)
        assert forecaster.m == 48

    def test_unknown_name_rejected(self):
        with pytest.raises(ForecastError):
            make_forecaster("oracle")

    def test_quantiles_available_on_all(self):
        for name in FORECASTER_REGISTRY:
            forecaster = make_forecaster(name).fit(diurnal(n_days=3))
            assert forecaster.forecast_quantile(1, 0.9) >= forecaster.forecast(1) - 1e-9
