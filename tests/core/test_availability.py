"""Tests for availability-aware SLA reporting."""

from __future__ import annotations

import pytest

from repro.core.slices import NetworkSlice
from tests.conftest import make_request


class TestSlaMet:
    def test_trivially_met_before_service(self):
        assert NetworkSlice(make_request(availability=0.99)).sla_met()

    def test_met_within_budget(self):
        s = NetworkSlice(make_request(availability=0.9))
        for _ in range(95):
            s.record_epoch(False)
        for _ in range(5):
            s.record_epoch(True)
        assert s.violation_ratio() == pytest.approx(0.05)
        assert s.sla_met()

    def test_breached_beyond_budget(self):
        s = NetworkSlice(make_request(availability=0.9))
        for _ in range(80):
            s.record_epoch(False)
        for _ in range(20):
            s.record_epoch(True)
        assert not s.sla_met()

    def test_exact_boundary_counts_as_met(self):
        s = NetworkSlice(make_request(availability=0.9))
        for _ in range(90):
            s.record_epoch(False)
        for _ in range(10):
            s.record_epoch(True)
        assert s.sla_met()

    def test_strict_availability_is_strict(self):
        s = NetworkSlice(make_request(availability=0.999))
        for _ in range(99):
            s.record_epoch(False)
        s.record_epoch(True)
        assert not s.sla_met()

    def test_to_dict_carries_sla_fields(self):
        s = NetworkSlice(make_request(availability=0.97))
        payload = s.to_dict()
        assert payload["availability"] == 0.97
        assert payload["sla_met"] is True
        assert payload["priority"] >= 1


class TestDashboardSlaColumn:
    def test_breach_visible_in_table(self, testbed):
        from repro.core.orchestrator import Orchestrator
        from repro.dashboard.dashboard import Dashboard
        from repro.sim.engine import Simulator
        from repro.sim.randomness import RandomStreams
        from repro.traffic.patterns import ConstantProfile

        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=9),
        )
        orch.start()
        request = make_request()
        orch.submit(request, ConstantProfile(20.0, level=0.5, noise_std=0.0))
        sim.run_until(120.0)
        slice_id = request.request_id.replace("req-", "slice-")
        # Force a breach by hand.
        network_slice = orch.slice(slice_id)
        for _ in range(50):
            network_slice.record_epoch(True)
        table = Dashboard(orch).slice_table()
        assert "BREACH" in table

    def test_gain_sparkline_rendered(self, testbed):
        from repro.core.orchestrator import Orchestrator
        from repro.dashboard.dashboard import Dashboard
        from repro.sim.engine import Simulator
        from repro.sim.randomness import RandomStreams
        from repro.traffic.patterns import ConstantProfile

        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=9),
        )
        orch.start()
        request = make_request()
        orch.submit(request, ConstantProfile(20.0, level=0.5))
        sim.run_until(600.0)
        dashboard = Dashboard(orch)
        assert dashboard.gain_sparkline()
        assert "gain history" in dashboard.headline()
