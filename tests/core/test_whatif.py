"""Tests for the what-if admission probe and metrics exposition."""

from __future__ import annotations

import pytest

from repro.api.routes import build_orchestrator_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def orch(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=13),
    )
    orchestrator.start()
    return sim, orchestrator


class TestWhatIf:
    def test_feasible_request_would_admit(self, orch):
        _, orchestrator = orch
        report = orchestrator.what_if(make_request())
        assert report["would_admit"]
        assert report["ran"]["feasible"]
        assert report["cloud"]["candidate_dcs"]
        assert report["calendar"]["feasible"]

    def test_probe_commits_nothing(self, orch):
        _, orchestrator = orch
        before = orchestrator.allocator.free_vector()
        orchestrator.what_if(make_request())
        after = orchestrator.allocator.free_vector()
        assert before == after
        assert orchestrator.ledger.admissions == 0
        assert orchestrator.ledger.rejections == 0
        assert orchestrator.plmn_pool.available == orchestrator.plmn_pool.capacity

    def test_infeasible_ran_reported(self, orch):
        _, orchestrator = orch
        report = orchestrator.what_if(make_request(throughput_mbps=500.0))
        assert not report["would_admit"]
        assert not report["ran"]["feasible"]

    def test_tight_latency_names_edge_only(self, orch):
        _, orchestrator = orch
        report = orchestrator.what_if(
            make_request(throughput_mbps=5.0, max_latency_ms=8.0)
        )
        assert report["cloud"]["candidate_dcs"] == ["edge-dc"]

    def test_calendar_conflict_reported(self, orch):
        sim, orchestrator = orch
        for _ in range(2):
            advance = make_request(throughput_mbps=40.0, duration_s=7_200.0)
            orchestrator.submit_advance(
                advance, ConstantProfile(40.0, level=0.5), start_time=600.0
            )
        report = orchestrator.what_if(
            make_request(throughput_mbps=40.0, duration_s=7_200.0)
        )
        assert not report["calendar"]["feasible"]
        assert not report["would_admit"]

    def test_whatif_route(self, orch):
        _, orchestrator = orch
        api = build_orchestrator_api(orchestrator)
        response = api.post(
            "/whatif",
            body={
                "service_type": "urllc",
                "throughput_mbps": 5.0,
                "max_latency_ms": 8.0,
                "duration_s": 600.0,
            },
        )
        assert response.ok
        assert response.body["would_admit"]
        assert response.json()

    def test_whatif_route_validation(self, orch):
        _, orchestrator = orch
        api = build_orchestrator_api(orchestrator)
        assert api.post("/whatif", body={}).status == 400
        assert (
            api.post(
                "/whatif",
                body={
                    "service_type": "embb",
                    "throughput_mbps": -1,
                    "max_latency_ms": 10,
                    "duration_s": 60,
                },
            ).status
            == 400
        )


class TestPrometheusExport:
    def test_format(self, orch):
        sim, orchestrator = orch
        request = make_request()
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        sim.run_until(120.0)
        text = orchestrator.metrics.to_prometheus()
        assert "ran_effective_utilization" in text
        slice_id = request.request_id.replace("req-", "slice-")
        assert f'slice_demand_mbps{{slice="{slice_id}"}}' in text
        # Every line is "name[{labels}] value timestamp".
        for line in text.strip().splitlines():
            parts = line.rsplit(" ", 2)
            assert len(parts) == 3
            float(parts[1])
            int(parts[2])

    def test_empty_registry(self):
        from repro.monitoring.metrics import MetricsRegistry

        assert MetricsRegistry().to_prometheus() == ""
