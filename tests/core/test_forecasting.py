"""Tests for the forecasting engine."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.forecasting import (
    ArForecaster,
    EnsembleForecaster,
    ForecastError,
    HoltWintersForecaster,
    MovingAverageForecaster,
    NaiveForecaster,
    evaluate_forecaster,
)


def diurnal_series(n_days: int = 4, samples_per_day: int = 24, noise: float = 0.0, seed: int = 0):
    """Synthetic diurnal trace used across these tests."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_days * samples_per_day)
    base = 50 + 40 * np.sin(2 * np.pi * t / samples_per_day)
    return base + rng.normal(0, noise, size=t.size)


class TestNaive:
    def test_forecast_is_last_value(self):
        f = NaiveForecaster().fit([1.0, 2.0, 7.0])
        assert f.forecast(1) == 7.0
        assert f.forecast(10) == 7.0

    def test_unfitted_raises(self):
        with pytest.raises(ForecastError):
            NaiveForecaster().forecast()

    def test_empty_history_rejected(self):
        with pytest.raises(ForecastError):
            NaiveForecaster().fit([])

    def test_nan_history_rejected(self):
        with pytest.raises(ForecastError):
            NaiveForecaster().fit([1.0, float("nan")])

    def test_forecast_clipped_at_zero(self):
        f = NaiveForecaster().fit([-5.0])
        assert f.forecast(1) == 0.0

    def test_bad_horizon_rejected(self):
        f = NaiveForecaster().fit([1.0])
        with pytest.raises(ForecastError):
            f.forecast(0)


class TestMovingAverage:
    def test_forecast_is_window_mean(self):
        f = MovingAverageForecaster(window=3).fit([1.0, 2.0, 3.0, 4.0, 5.0])
        assert f.forecast(1) == pytest.approx(4.0)

    def test_window_larger_than_history(self):
        f = MovingAverageForecaster(window=100).fit([2.0, 4.0])
        assert f.forecast(1) == pytest.approx(3.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ForecastError):
            MovingAverageForecaster(window=0)

    def test_smooths_noise_better_than_naive(self):
        series = diurnal_series(noise=15.0, seed=3)
        constant = 50 + np.random.default_rng(1).normal(0, 10, 200)
        ma = evaluate_forecaster(MovingAverageForecaster(window=20), constant)
        naive = evaluate_forecaster(NaiveForecaster(), constant)
        assert ma["mae"] < naive["mae"]


class TestAr:
    def test_fits_linear_trend_well(self):
        series = np.arange(50, dtype=float)
        f = ArForecaster(order=2).fit(series)
        assert f.forecast(1) == pytest.approx(50.0, abs=0.5)

    def test_short_history_falls_back_to_naive(self):
        f = ArForecaster(order=5).fit([3.0, 4.0])
        assert f.forecast(1) == 4.0

    def test_multi_step_iterates(self):
        series = np.arange(50, dtype=float)
        f = ArForecaster(order=2).fit(series)
        assert f.forecast(5) == pytest.approx(54.0, abs=1.0)

    def test_bad_order_rejected(self):
        with pytest.raises(ForecastError):
            ArForecaster(order=0)

    def test_captures_sinusoid(self):
        series = diurnal_series(n_days=6)
        result = evaluate_forecaster(ArForecaster(order=8), series)
        naive = evaluate_forecaster(NaiveForecaster(), series)
        assert result["mae"] < naive["mae"]


class TestHoltWinters:
    def test_learns_seasonality(self):
        series = diurnal_series(n_days=6)
        hw = evaluate_forecaster(HoltWintersForecaster(season_length=24), series)
        naive = evaluate_forecaster(NaiveForecaster(), series)
        assert hw["mae"] < naive["mae"]

    def test_seasonal_forecast_tracks_phase(self):
        series = diurnal_series(n_days=6)
        f = HoltWintersForecaster(season_length=24).fit(series)
        # The next sample continues the sinusoid.
        expected = 50 + 40 * math.sin(2 * math.pi * len(series) / 24)
        assert f.forecast(1) == pytest.approx(expected, abs=8.0)

    def test_short_history_uses_trend_only(self):
        f = HoltWintersForecaster(season_length=24).fit([10.0, 11.0, 12.0])
        assert f.forecast(1) > 10.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ForecastError):
            HoltWintersForecaster(season_length=1)
        with pytest.raises(ForecastError):
            HoltWintersForecaster(alpha=0.0)
        with pytest.raises(ForecastError):
            HoltWintersForecaster(beta=1.0)

    def test_constant_series_forecasts_constant(self):
        f = HoltWintersForecaster(season_length=4).fit([5.0] * 20)
        assert f.forecast(3) == pytest.approx(5.0, abs=0.1)


class TestQuantiles:
    def test_quantile_above_point_forecast(self):
        series = diurnal_series(noise=5.0)
        f = HoltWintersForecaster(season_length=24).fit(series)
        assert f.forecast_quantile(1, 0.95) >= f.forecast(1)

    def test_quantile_monotone_in_q(self):
        series = diurnal_series(noise=5.0)
        f = NaiveForecaster().fit(series)
        q50 = f.forecast_quantile(1, 0.5)
        q90 = f.forecast_quantile(1, 0.9)
        q99 = f.forecast_quantile(1, 0.99)
        assert q50 <= q90 <= q99

    def test_quantile_widens_with_horizon(self):
        series = diurnal_series(noise=5.0)
        f = NaiveForecaster().fit(series)
        assert f.forecast_quantile(4, 0.95) >= f.forecast_quantile(1, 0.95)

    def test_bad_quantile_rejected(self):
        f = NaiveForecaster().fit([1.0, 2.0])
        with pytest.raises(ForecastError):
            f.forecast_quantile(1, 0.0)
        with pytest.raises(ForecastError):
            f.forecast_quantile(1, 1.0)

    def test_quantile_coverage_on_gaussian_noise(self):
        """The 95% quantile should cover ≥ ~90% of next-step truths."""
        rng = np.random.default_rng(7)
        series = 50 + rng.normal(0, 5, 300)
        covered = 0
        total = 0
        f = MovingAverageForecaster(window=30)
        for origin in range(100, 290):
            f.fit(series[:origin])
            if series[origin] <= f.forecast_quantile(1, 0.95):
                covered += 1
            total += 1
        assert covered / total >= 0.88

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=3, max_size=60
        ),
        q=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_quantile_never_negative(self, values, q):
        f = NaiveForecaster().fit(values)
        assert f.forecast_quantile(1, q) >= 0.0


class TestEnsemble:
    def test_picks_seasonal_model_on_diurnal_trace(self):
        series = diurnal_series(n_days=8)
        f = EnsembleForecaster().fit(series)
        assert isinstance(f.selected, (HoltWintersForecaster, ArForecaster))

    def test_forecast_matches_selected_member(self):
        series = diurnal_series(n_days=4)
        f = EnsembleForecaster().fit(series)
        assert f.forecast(1) == pytest.approx(
            max(0.0, f.selected._point_forecast(1))
        )

    def test_empty_member_list_rejected(self):
        with pytest.raises(ForecastError):
            EnsembleForecaster(members=[])


class TestEvaluation:
    def test_metrics_present(self):
        result = evaluate_forecaster(NaiveForecaster(), diurnal_series())
        assert set(result) == {"mae", "rmse", "mape", "n_evaluations"}
        assert result["rmse"] >= result["mae"] * 0.99

    def test_too_short_series_rejected(self):
        with pytest.raises(ForecastError):
            evaluate_forecaster(NaiveForecaster(), [1.0, 2.0])

    def test_perfect_forecaster_zero_error(self):
        result = evaluate_forecaster(NaiveForecaster(), [5.0] * 50)
        assert result["mae"] == 0.0
