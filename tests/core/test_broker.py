"""Tests for the batch-window slice broker."""

from __future__ import annotations

import pytest

from repro.core.admission import FcfsPolicy, KnapsackPolicy
from repro.core.broker import BrokerError, SliceBroker
from repro.core.orchestrator import Orchestrator
from repro.core.slices import SliceState
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=4),
    )
    orchestrator.start()
    broker = SliceBroker(orchestrator, window_s=300.0, policy=KnapsackPolicy())
    return sim, orchestrator, broker


def enqueue(broker, **kwargs):
    request = make_request(**kwargs)
    broker.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
    return request


class TestWindowing:
    def test_requests_queue_until_window(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker)
        enqueue(broker)
        assert broker.pending == 2
        assert orchestrator.ledger.admissions == 0
        sim.run_until(301.0)
        assert broker.pending == 0
        assert orchestrator.ledger.admissions == 2

    def test_flush_timer_armed_once(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker)
        enqueue(broker)
        sim.run_until(301.0)
        assert broker.windows_flushed == 1

    def test_second_window_after_first(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker, throughput_mbps=5.0)
        sim.run_until(301.0)
        enqueue(broker, throughput_mbps=5.0)
        sim.run_until(700.0)
        assert broker.windows_flushed == 2
        assert orchestrator.ledger.admissions == 2

    def test_manual_flush(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker)
        outcomes = broker.flush()
        assert len(outcomes) == 1
        assert outcomes[0].admitted

    def test_flush_empty_queue_noop(self, stack):
        _, _, broker = stack
        assert broker.flush() == []
        assert broker.windows_flushed == 0

    def test_bad_window_rejected(self, stack):
        _, orchestrator, _ = stack
        with pytest.raises(BrokerError):
            SliceBroker(orchestrator, window_s=0.0)


class TestBatchDecisions:
    def test_knapsack_broker_prefers_value(self, stack):
        """One window holding a cheap RAN-hog and two valuable slices:
        the broker must skip the hog — FCFS order would not."""
        sim, orchestrator, broker = stack
        hog = enqueue(broker, throughput_mbps=45.0, price=10.0)
        rich_a = enqueue(broker, throughput_mbps=30.0, price=100.0)
        rich_b = enqueue(broker, throughput_mbps=30.0, price=100.0)
        sim.run_until(301.0)
        states = {
            r.request_id: orchestrator.slice(
                r.request_id.replace("req-", "slice-")
            ).state
            for r in (hog, rich_a, rich_b)
        }
        assert states[rich_a.request_id] is not SliceState.REJECTED
        assert states[rich_b.request_id] is not SliceState.REJECTED

    def test_rejected_requests_booked(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker, throughput_mbps=500.0, price=1.0)  # cannot ever fit
        sim.run_until(301.0)
        assert orchestrator.ledger.rejections == 1

    def test_decisions_log_grows(self, stack):
        sim, orchestrator, broker = stack
        enqueue(broker)
        enqueue(broker)
        sim.run_until(301.0)
        assert len(broker.decisions) == 2

    def test_fcfs_broker_matches_online_order(self, testbed):
        """With an FCFS batch policy, the broker admits in queue order —
        same outcome as online submission."""
        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=4),
        )
        orchestrator.start()
        broker = SliceBroker(orchestrator, window_s=60.0, policy=FcfsPolicy())
        for _ in range(3):
            enqueue(broker, throughput_mbps=40.0)
        sim.run_until(61.0)
        # Two 40 Mb/s slices fit (one per cell); the third is rejected.
        assert orchestrator.ledger.admissions == 2
        assert orchestrator.ledger.rejections == 1

    def test_broker_respects_advance_bookings(self, stack):
        """A windowed winner that would cannibalize a future booking is
        dropped at flush time (paper §2's 'upcoming requests')."""
        sim, orchestrator, broker = stack
        # Book most of the RAN for a future event.
        for _ in range(2):
            advance = make_request(throughput_mbps=40.0, duration_s=7_200.0)
            assert orchestrator.submit_advance(
                advance,
                ConstantProfile(40.0, level=0.5),
                start_time=1_200.0,
            ).admitted
        # A long walk-in overlapping the event window arrives via the broker.
        conflict = enqueue(broker, throughput_mbps=40.0, duration_s=7_200.0)
        sim.run_until(301.0)
        slice_id = conflict.request_id.replace("req-", "slice-")
        assert orchestrator.slice(slice_id).state is SliceState.REJECTED
        record = orchestrator.ledger.rejection_records()[-1]
        assert "advance reservations" in record.reason

    def test_broker_revenue_at_least_online_fcfs(self, testbed):
        """On the adversarial pattern, the windowed knapsack broker books
        at least the revenue online FCFS books."""
        from repro.experiments.testbed import build_testbed

        def run(use_broker):
            tb = build_testbed()
            sim = Simulator()
            orch = Orchestrator(
                sim=sim,
                allocator=tb.allocator,
                plmn_pool=tb.plmn_pool,
                streams=RandomStreams(seed=4),
            )
            orch.start()
            requests = [
                make_request(throughput_mbps=45.0, price=10.0),
                make_request(throughput_mbps=45.0, price=10.0),
                make_request(throughput_mbps=30.0, price=100.0),
                make_request(throughput_mbps=30.0, price=100.0),
            ]
            if use_broker:
                broker = SliceBroker(orch, window_s=60.0, policy=KnapsackPolicy())
                for request in requests:
                    broker.submit(
                        request,
                        ConstantProfile(request.sla.throughput_mbps, level=0.5),
                    )
                sim.run_until(61.0)
            else:
                for request in requests:
                    orch.submit(
                        request,
                        ConstantProfile(request.sla.throughput_mbps, level=0.5),
                    )
            return orch.ledger.gross_revenue

        assert run(use_broker=True) >= run(use_broker=False)
