"""Tests for the bounded orchestration event log."""

from __future__ import annotations

import pytest

from repro.core.events import EventLog, EventLogError


class TestEventLog:
    def test_seq_is_monotonic_from_one(self):
        log = EventLog()
        first = log.emit(0.0, "slice.admitted", slice_id="slice-1")
        second = log.emit(1.0, "slice.activated", slice_id="slice-1")
        assert (first.seq, second.seq) == (1, 2)
        assert log.last_seq == 2

    def test_since_excludes_cursor(self):
        log = EventLog()
        for i in range(5):
            log.emit(float(i), "tick")
        events = log.since(3)
        assert [e.seq for e in events] == [4, 5]
        assert log.since(5) == []

    def test_since_limit(self):
        log = EventLog()
        for i in range(5):
            log.emit(float(i), "tick")
        assert [e.seq for e in log.since(0, limit=2)] == [1, 2]

    def test_capacity_evicts_oldest_but_keeps_seq(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit(float(i), "tick")
        assert len(log) == 3
        assert log.first_seq == 8
        assert log.last_seq == 10
        # A consumer whose cursor fell behind retention sees the gap.
        assert [e.seq for e in log.since(0)] == [8, 9, 10]

    def test_to_dict_shape(self):
        log = EventLog()
        event = log.emit(2.5, "sla.violation", slice_id="s", tenant_id="t", penalty=1.0)
        assert event.to_dict() == {
            "seq": 1,
            "time": 2.5,
            "type": "sla.violation",
            "slice_id": "s",
            "tenant_id": "t",
            "data": {"penalty": 1.0},
        }

    def test_invalid_inputs(self):
        with pytest.raises(EventLogError):
            EventLog(capacity=0)
        with pytest.raises(EventLogError):
            EventLog().since(-1)


class TestOrchestratorEmission:
    def test_expiry_and_violation_events(self, testbed):
        from repro.core.orchestrator import Orchestrator
        from repro.sim.engine import Simulator
        from repro.sim.randomness import RandomStreams
        from repro.traffic.patterns import ConstantProfile
        from tests.conftest import make_request

        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=7),
        )
        orchestrator.start()
        request = make_request(duration_s=600.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        sim.run_until(1_000.0)
        types = [e.event_type for e in orchestrator.events.since(0)]
        assert "slice.admitted" in types
        assert "slice.activated" in types
        assert "slice.expired" in types


class TestEventLogSinkAndResume:
    def test_sink_sees_every_emitted_event(self):
        log = EventLog()
        seen = []
        log.sink = seen.append
        event = log.emit(1.0, "slice.admitted", slice_id="s1")
        assert seen == [event]

    def test_resume_from_never_reuses_seqs(self):
        log = EventLog()
        log.emit(0.0, "tick")
        log.resume_from(41)
        assert log.emit(1.0, "tick").seq == 42
        # Resuming backwards is a no-op: numbering stays monotonic.
        log.resume_from(5)
        assert log.emit(2.0, "tick").seq == 43


class TestPlannerIncidentEvents:
    def test_op_timeout_surfaces_on_the_feed_with_tenant(self, testbed):
        """Satellite of the durability PR: planner op timeouts and
        compensations are *events*, not just counters — attributed to
        the slice's tenant on the northbound feed."""
        from repro.core.orchestrator import Orchestrator, OrchestratorConfig
        from repro.core.slices import PlmnPool
        from repro.drivers.mock import MockDriver
        from repro.sim.engine import Simulator
        from repro.traffic.patterns import ConstantProfile
        from tests.conftest import make_request

        chaos = MockDriver("chaos", capacity_mbps=10_000.0, max_concurrent_installs=8)
        testbed.registry.register(chaos)
        orchestrator = Orchestrator(
            sim=Simulator(),
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=12),
            config=OrchestratorConfig(install_timeout_s=0.15),
            registry=testbed.registry,
        )
        chaos.stall()  # the next chaos-domain operation hangs
        request = make_request(throughput_mbps=5.0, tenant="tenant-x")
        try:
            (decision,) = orchestrator.install_admitted_batch(
                [(request, ConstantProfile(5.0))]
            )
            assert not decision.admitted
            timeouts = [
                e for e in orchestrator.events.since(0)
                if e.event_type == "driver.op_timeout"
            ]
            assert timeouts, "driver.op_timeout expected on the feed"
            assert timeouts[0].tenant_id == "tenant-x"
            assert timeouts[0].data["domain"] == "chaos"
        finally:
            chaos.release_stall()
