"""Tests for the bounded orchestration event log."""

from __future__ import annotations

import pytest

from repro.core.events import EventLog, EventLogError


class TestEventLog:
    def test_seq_is_monotonic_from_one(self):
        log = EventLog()
        first = log.emit(0.0, "slice.admitted", slice_id="slice-1")
        second = log.emit(1.0, "slice.activated", slice_id="slice-1")
        assert (first.seq, second.seq) == (1, 2)
        assert log.last_seq == 2

    def test_since_excludes_cursor(self):
        log = EventLog()
        for i in range(5):
            log.emit(float(i), "tick")
        events = log.since(3)
        assert [e.seq for e in events] == [4, 5]
        assert log.since(5) == []

    def test_since_limit(self):
        log = EventLog()
        for i in range(5):
            log.emit(float(i), "tick")
        assert [e.seq for e in log.since(0, limit=2)] == [1, 2]

    def test_capacity_evicts_oldest_but_keeps_seq(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit(float(i), "tick")
        assert len(log) == 3
        assert log.first_seq == 8
        assert log.last_seq == 10
        # A consumer whose cursor fell behind retention sees the gap.
        assert [e.seq for e in log.since(0)] == [8, 9, 10]

    def test_to_dict_shape(self):
        log = EventLog()
        event = log.emit(2.5, "sla.violation", slice_id="s", tenant_id="t", penalty=1.0)
        assert event.to_dict() == {
            "seq": 1,
            "time": 2.5,
            "type": "sla.violation",
            "slice_id": "s",
            "tenant_id": "t",
            "data": {"penalty": 1.0},
        }

    def test_invalid_inputs(self):
        with pytest.raises(EventLogError):
            EventLog(capacity=0)
        with pytest.raises(EventLogError):
            EventLog().since(-1)


class TestOrchestratorEmission:
    def test_expiry_and_violation_events(self, testbed):
        from repro.core.orchestrator import Orchestrator
        from repro.sim.engine import Simulator
        from repro.sim.randomness import RandomStreams
        from repro.traffic.patterns import ConstantProfile
        from tests.conftest import make_request

        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=7),
        )
        orchestrator.start()
        request = make_request(duration_s=600.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        sim.run_until(1_000.0)
        types = [e.event_type for e in orchestrator.events.since(0)]
        assert "slice.admitted" in types
        assert "slice.activated" in types
        assert "slice.expired" in types
