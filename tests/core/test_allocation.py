"""Tests for the multi-domain allocator on the canonical testbed."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import DatacenterTier
from repro.core.allocation import AllocationError
from repro.core.slices import NetworkSlice
from tests.conftest import make_request


def make_slice(testbed, **kwargs) -> NetworkSlice:
    network_slice = NetworkSlice(make_request(**kwargs))
    network_slice.plmn = testbed.plmn_pool.allocate(network_slice.slice_id)
    return network_slice


class TestDemandVector:
    def test_components_positive(self, testbed):
        demand = testbed.allocator.demand_vector(make_request(throughput_mbps=20.0))
        assert demand.prbs > 0
        assert demand.mbps == 20.0
        assert demand.vcpus == 6.0  # vEPC: 2×small(1) + 2×medium(2)

    def test_prbs_scale_with_throughput(self, testbed):
        small = testbed.allocator.demand_vector(make_request(throughput_mbps=5.0))
        big = testbed.allocator.demand_vector(make_request(throughput_mbps=40.0))
        assert big.prbs > small.prbs


class TestFreeVector:
    def test_initially_matches_testbed(self, testbed):
        free = testbed.allocator.free_vector()
        assert free.prbs == 100  # best single 20 MHz cell
        assert free.mbps == pytest.approx(1_000.0)  # best eNB uplink (mmWave)
        assert free.vcpus == 2 * 16 + 4 * 32  # edge + core

    def test_shrinks_after_allocation(self, testbed):
        before = testbed.allocator.free_vector()
        network_slice = make_slice(testbed)
        testbed.allocator.allocate(network_slice)
        after = testbed.allocator.free_vector()
        assert after.vcpus == before.vcpus - 6


class TestAllocate:
    def test_end_to_end_allocation(self, testbed):
        network_slice = make_slice(testbed, throughput_mbps=20.0, max_latency_ms=50.0)
        allocation = testbed.allocator.allocate(network_slice)
        assert allocation.ran.effective_prbs > 0
        assert allocation.transport.path.link_ids
        assert allocation.cloud.dc_id in ("edge-dc", "core-dc")
        assert allocation.total_latency_ms <= 50.0

    def test_relaxed_latency_prefers_core(self, testbed):
        network_slice = make_slice(testbed, max_latency_ms=100.0)
        allocation = testbed.allocator.allocate(network_slice)
        assert allocation.cloud.dc_id == "core-dc"

    def test_tight_latency_forces_edge(self, testbed):
        # RAN 4 ms + mmWave 1 ms + edge fiber 0.5 + processing 0.5 = 6 ms;
        # the core DC is 5 ms farther and cannot fit in 8 ms.
        network_slice = make_slice(testbed, max_latency_ms=8.0, throughput_mbps=5.0)
        allocation = testbed.allocator.allocate(network_slice)
        assert allocation.cloud.dc_id == "edge-dc"

    def test_impossible_latency_rejected_with_domain(self, testbed):
        network_slice = make_slice(testbed, max_latency_ms=4.5, throughput_mbps=5.0)
        with pytest.raises(AllocationError) as excinfo:
            testbed.allocator.allocate(network_slice)
        assert excinfo.value.domain in ("cloud", "transport")

    def test_throughput_beyond_any_cell_rejected(self, testbed):
        # A 10 MHz cell at reference CQI sustains ~100 Mb/s.
        network_slice = make_slice(testbed, throughput_mbps=500.0)
        with pytest.raises(AllocationError) as excinfo:
            testbed.allocator.allocate(network_slice)
        assert excinfo.value.domain == "ran"

    def test_failed_allocation_rolls_back_ran(self, testbed):
        network_slice = make_slice(testbed, max_latency_ms=4.5, throughput_mbps=5.0)
        with pytest.raises(AllocationError):
            testbed.allocator.allocate(network_slice)
        # Nothing leaked in any domain.
        assert testbed.ran.serving_enb_of(network_slice.slice_id) is None
        assert testbed.transport.allocation_of(network_slice.slice_id) is None
        assert testbed.cloud.stack_of(network_slice.slice_id) is None

    def test_missing_plmn_rejected(self, testbed):
        network_slice = NetworkSlice(make_request())
        with pytest.raises(AllocationError) as excinfo:
            testbed.allocator.allocate(network_slice)
        assert excinfo.value.domain == "orchestrator"

    def test_effective_fraction_shrinks_commitments(self, testbed):
        full = make_slice(testbed, throughput_mbps=40.0)
        a_full = testbed.allocator.allocate(full)
        shrunk = make_slice(testbed, throughput_mbps=40.0)
        a_shrunk = testbed.allocator.allocate(shrunk, effective_fraction=0.5)
        assert a_shrunk.ran.effective_prbs < a_full.ran.effective_prbs
        assert a_shrunk.transport.effective_mbps == pytest.approx(20.0)
        assert a_shrunk.ran.nominal_prbs == a_full.ran.nominal_prbs

    def test_overbooking_admits_more_slices(self, testbed):
        """With 50% shrink the two cells fit about twice the slices."""
        count_full = 0
        try:
            while True:
                s = make_slice(testbed, throughput_mbps=30.0)
                testbed.allocator.allocate(s)
                count_full += 1
        except (AllocationError, Exception):
            pass
        from repro.experiments.testbed import build_testbed

        testbed2 = build_testbed()
        count_shrunk = 0
        try:
            while True:
                s = make_slice(testbed2, throughput_mbps=30.0)
                testbed2.allocator.allocate(s, effective_fraction=0.5)
                count_shrunk += 1
        except (AllocationError, Exception):
            pass
        assert count_shrunk > count_full


class TestReleaseAndResize:
    def test_release_returns_all_resources(self, testbed):
        free_before = testbed.allocator.free_vector()
        network_slice = make_slice(testbed)
        testbed.allocator.allocate(network_slice)
        testbed.allocator.release(network_slice)
        free_after = testbed.allocator.free_vector()
        assert free_after.prbs == free_before.prbs
        assert free_after.mbps == pytest.approx(free_before.mbps)
        assert free_after.vcpus == free_before.vcpus
        assert network_slice.allocation is None

    def test_resize_down_and_up(self, testbed):
        network_slice = make_slice(testbed, throughput_mbps=40.0)
        testbed.allocator.allocate(network_slice)
        nominal_prbs = network_slice.allocation.ran.nominal_prbs
        testbed.allocator.resize(network_slice, 0.5)
        assert network_slice.allocation.ran.effective_prbs == max(1, round(nominal_prbs * 0.5))
        testbed.allocator.resize(network_slice, 1.0)
        assert network_slice.allocation.ran.effective_prbs == nominal_prbs

    def test_resize_unallocated_rejected(self, testbed):
        network_slice = make_slice(testbed)
        with pytest.raises(AllocationError):
            testbed.allocator.resize(network_slice, 0.5)

    def test_resize_bad_fraction_rejected(self, testbed):
        network_slice = make_slice(testbed)
        testbed.allocator.allocate(network_slice)
        with pytest.raises(AllocationError):
            testbed.allocator.resize(network_slice, 0.0)


class TestCandidateDatacenters:
    def test_candidates_core_first(self, testbed):
        request = make_request(max_latency_ms=100.0)
        candidates = testbed.allocator.candidate_datacenters(request, "enb1-agg")
        assert candidates[0].tier is DatacenterTier.CORE

    def test_tight_budget_only_edge(self, testbed):
        request = make_request(max_latency_ms=8.0, throughput_mbps=5.0)
        candidates = testbed.allocator.candidate_datacenters(request, "enb1-agg")
        assert [dc.tier for dc in candidates] == [DatacenterTier.EDGE]

    def test_feasible_probe(self, testbed):
        assert testbed.allocator.feasible(make_request())
        assert not testbed.allocator.feasible(make_request(throughput_mbps=500.0))
