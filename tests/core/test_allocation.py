"""Tests for the multi-domain *planning* surface on the canonical testbed.

The allocator's pre-driver-API lifecycle (``allocate``/``release``/
``modify_throughput``/``resize``) is retired: commits run through the
southbound :class:`~repro.drivers.registry.DriverRegistry` (the
conformance and transaction suites are their executable spec).  What
remains here is the planning surface the orchestrator still consults —
demand estimation, free/aggregate capacity, candidate-DC ranking under
the latency budget — plus end-to-end install checks expressed through
the testbed's driver registry.
"""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import DatacenterTier
from repro.core.allocation import MultiDomainAllocator
from repro.core.slices import NetworkSlice
from repro.drivers.base import DomainSpec
from repro.drivers.transaction import InstallTransaction, TransactionError
from tests.conftest import make_request


def make_slice(testbed, **kwargs) -> NetworkSlice:
    network_slice = NetworkSlice(make_request(**kwargs))
    network_slice.plmn = testbed.plmn_pool.allocate(network_slice.slice_id)
    return network_slice


def install_specs(testbed, network_slice, dc, effective_fraction=1.0):
    """Spec map for one install attempt pinned to ``dc`` (the batch
    planner's per-candidate shape, built by hand for the test)."""
    request = network_slice.request
    demand = testbed.allocator.demand_vector(request)
    effective_prbs = max(1, round(demand.prbs * effective_fraction))
    enb_id = testbed.ran.best_enb_for(request.sla.throughput_mbps, effective_prbs)
    assert enb_id is not None
    enb_node = testbed.ran.enb(enb_id).transport_node
    plmn = network_slice.plmn
    common = dict(
        slice_id=network_slice.slice_id,
        tenant_id=request.tenant_id,
        throughput_mbps=request.sla.throughput_mbps,
        max_latency_ms=request.sla.max_latency_ms,
        duration_s=request.sla.duration_s,
        effective_fraction=effective_fraction,
        vcpus=demand.vcpus,
    )
    attributes = {
        "ran": {"plmn": plmn, "enb_id": enb_id},
        "transport": {
            "src": enb_node,
            "dst": dc.gateway_node,
            "max_delay_ms": testbed.allocator.transport_budget_ms(request, dc),
            "plmn_id": plmn.plmn_id,
        },
        "cloud": {"dc_id": dc.dc_id},
        "epc": {"plmn_id": plmn.plmn_id},
    }
    return {
        domain: DomainSpec(attributes=attributes.get(domain, {}), **common)
        for domain in testbed.registry.domains()
    }


def install_e2e(testbed, network_slice, effective_fraction=1.0):
    """End-to-end install through the driver registry: candidate DCs in
    planner order, one two-phase transaction per candidate."""
    request = network_slice.request
    demand = testbed.allocator.demand_vector(request)
    effective_prbs = max(1, round(demand.prbs * effective_fraction))
    enb_id = testbed.ran.best_enb_for(request.sla.throughput_mbps, effective_prbs)
    if enb_id is None:
        raise TransactionError("ran", "no eNB fits")
    enb_node = testbed.ran.enb(enb_id).transport_node
    candidates = testbed.allocator.candidate_datacenters(request, enb_node)
    if not candidates:
        raise TransactionError("cloud", "no feasible datacenter")
    transaction = InstallTransaction(testbed.registry)
    last_error = None
    for dc in candidates:
        try:
            return transaction.run(
                install_specs(testbed, network_slice, dc, effective_fraction)
            )
        except TransactionError as exc:
            last_error = exc
    raise last_error


class TestLifecycleRetired:
    def test_no_lifecycle_method_remains(self):
        for name in ("allocate", "release", "modify_throughput", "resize"):
            assert not hasattr(MultiDomainAllocator, name), (
                f"MultiDomainAllocator.{name} should be retired; lifecycle "
                f"goes through the DriverRegistry"
            )

    def test_testbed_carries_the_registry(self, testbed):
        assert set(testbed.registry.domains()) == {"ran", "transport", "cloud", "epc"}


class TestDemandVector:
    def test_components_positive(self, testbed):
        demand = testbed.allocator.demand_vector(make_request(throughput_mbps=20.0))
        assert demand.prbs > 0
        assert demand.mbps == 20.0
        assert demand.vcpus == 6.0  # vEPC: 2×small(1) + 2×medium(2)

    def test_prbs_scale_with_throughput(self, testbed):
        small = testbed.allocator.demand_vector(make_request(throughput_mbps=5.0))
        big = testbed.allocator.demand_vector(make_request(throughput_mbps=40.0))
        assert big.prbs > small.prbs


class TestFreeVector:
    def test_initially_matches_testbed(self, testbed):
        free = testbed.allocator.free_vector()
        assert free.prbs == 100  # best single 20 MHz cell
        assert free.mbps == pytest.approx(1_000.0)  # best eNB uplink (mmWave)
        assert free.vcpus == 2 * 16 + 4 * 32  # edge + core

    def test_shrinks_after_registry_install(self, testbed):
        before = testbed.allocator.free_vector()
        network_slice = make_slice(testbed)
        install_e2e(testbed, network_slice)
        after = testbed.allocator.free_vector()
        assert after.vcpus == before.vcpus - 6


class TestRegistryInstall:
    def test_end_to_end_install(self, testbed):
        network_slice = make_slice(testbed, throughput_mbps=20.0, max_latency_ms=50.0)
        reservations = install_e2e(testbed, network_slice)
        assert reservations["ran"].details["allocation"].effective_prbs > 0
        assert reservations["transport"].details["link_ids"]
        assert reservations["cloud"].details["dc_id"] in ("edge-dc", "core-dc")

    def test_relaxed_latency_prefers_core(self, testbed):
        network_slice = make_slice(testbed, max_latency_ms=100.0)
        reservations = install_e2e(testbed, network_slice)
        assert reservations["cloud"].details["dc_id"] == "core-dc"

    def test_tight_latency_forces_edge(self, testbed):
        # RAN 4 ms + mmWave 1 ms + edge fiber 0.5 + processing 0.5 = 6 ms;
        # the core DC is 5 ms farther and cannot fit in 8 ms.
        network_slice = make_slice(testbed, max_latency_ms=8.0, throughput_mbps=5.0)
        reservations = install_e2e(testbed, network_slice)
        assert reservations["cloud"].details["dc_id"] == "edge-dc"

    def test_impossible_latency_rejected_with_no_residue(self, testbed):
        network_slice = make_slice(testbed, max_latency_ms=4.5, throughput_mbps=5.0)
        with pytest.raises(TransactionError):
            install_e2e(testbed, network_slice)
        # Nothing leaked in any domain.
        assert testbed.ran.serving_enb_of(network_slice.slice_id) is None
        assert testbed.transport.allocation_of(network_slice.slice_id) is None
        assert testbed.cloud.stack_of(network_slice.slice_id) is None

    def test_throughput_beyond_any_cell_rejected(self, testbed):
        network_slice = make_slice(testbed, throughput_mbps=500.0)
        with pytest.raises(TransactionError) as excinfo:
            install_e2e(testbed, network_slice)
        assert excinfo.value.domain == "ran"

    def test_effective_fraction_shrinks_commitments(self, testbed):
        full = make_slice(testbed, throughput_mbps=40.0)
        r_full = install_e2e(testbed, full)
        shrunk = make_slice(testbed, throughput_mbps=40.0)
        r_shrunk = install_e2e(testbed, shrunk, effective_fraction=0.5)
        ran_full = r_full["ran"].details["allocation"]
        ran_shrunk = r_shrunk["ran"].details["allocation"]
        assert ran_shrunk.effective_prbs < ran_full.effective_prbs
        assert ran_shrunk.nominal_prbs == ran_full.nominal_prbs
        transport_shrunk = r_shrunk["transport"].details["allocation"]
        assert transport_shrunk.effective_mbps == pytest.approx(20.0)

    def test_release_returns_all_resources(self, testbed):
        free_before = testbed.allocator.free_vector()
        network_slice = make_slice(testbed)
        install_e2e(testbed, network_slice)
        for driver in reversed(testbed.registry.drivers()):
            driver.release(network_slice.slice_id)
        free_after = testbed.allocator.free_vector()
        assert free_after.prbs == free_before.prbs
        assert free_after.mbps == pytest.approx(free_before.mbps)
        assert free_after.vcpus == free_before.vcpus


class TestCandidateDatacenters:
    def test_candidates_core_first(self, testbed):
        request = make_request(max_latency_ms=100.0)
        candidates = testbed.allocator.candidate_datacenters(request, "enb1-agg")
        assert candidates[0].tier is DatacenterTier.CORE

    def test_tight_budget_only_edge(self, testbed):
        request = make_request(max_latency_ms=8.0, throughput_mbps=5.0)
        candidates = testbed.allocator.candidate_datacenters(request, "enb1-agg")
        assert [dc.tier for dc in candidates] == [DatacenterTier.EDGE]

    def test_feasible_probe(self, testbed):
        assert testbed.allocator.feasible(make_request())
        assert not testbed.allocator.feasible(make_request(throughput_mbps=500.0))
