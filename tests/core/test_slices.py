"""Tests for the slice model: SLA, PLMN pool, request, state machine."""

from __future__ import annotations

import pytest

from repro.core.slices import (
    PLMN,
    IllegalTransition,
    NetworkSlice,
    PlmnPool,
    PlmnPoolExhausted,
    SLA,
    ServiceType,
    SliceError,
    SliceState,
)
from tests.conftest import make_request


class TestPlmn:
    def test_plmn_id_concatenates(self):
        assert PLMN("001", "01").plmn_id == "00101"

    def test_three_digit_mnc(self):
        assert PLMN("310", "410").plmn_id == "310410"

    def test_bad_mcc_rejected(self):
        with pytest.raises(SliceError):
            PLMN("01", "01")
        with pytest.raises(SliceError):
            PLMN("abc", "01")

    def test_bad_mnc_rejected(self):
        with pytest.raises(SliceError):
            PLMN("001", "1")
        with pytest.raises(SliceError):
            PLMN("001", "0001")

    def test_str(self):
        assert str(PLMN("001", "02")) == "00102"


class TestPlmnPool:
    def test_capacity_and_available(self):
        pool = PlmnPool(size=4)
        assert pool.capacity == 4
        assert pool.available == 4

    def test_allocate_reduces_available(self):
        pool = PlmnPool(size=3)
        pool.allocate("s1")
        assert pool.available == 2

    def test_allocations_are_distinct(self):
        pool = PlmnPool(size=3)
        plmns = {pool.allocate(f"s{i}").plmn_id for i in range(3)}
        assert len(plmns) == 3

    def test_exhaustion_raises(self):
        pool = PlmnPool(size=1)
        pool.allocate("s1")
        with pytest.raises(PlmnPoolExhausted):
            pool.allocate("s2")

    def test_release_returns_identity(self):
        pool = PlmnPool(size=1)
        plmn = pool.allocate("s1")
        pool.release("s1")
        assert pool.available == 1
        assert pool.allocate("s2").plmn_id == plmn.plmn_id

    def test_double_allocate_same_slice_rejected(self):
        pool = PlmnPool(size=2)
        pool.allocate("s1")
        with pytest.raises(SliceError):
            pool.allocate("s1")

    def test_release_unknown_rejected(self):
        with pytest.raises(SliceError):
            PlmnPool(size=2).release("ghost")

    def test_holder_of(self):
        pool = PlmnPool(size=2)
        plmn = pool.allocate("s1")
        assert pool.holder_of(plmn.plmn_id) == "s1"
        assert pool.holder_of("99999") is None

    def test_zero_size_rejected(self):
        with pytest.raises(SliceError):
            PlmnPool(size=0)


class TestSla:
    def test_valid_sla(self):
        sla = SLA(throughput_mbps=10, max_latency_ms=20, duration_s=60)
        assert sla.availability == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"throughput_mbps": 0, "max_latency_ms": 20, "duration_s": 60},
            {"throughput_mbps": 10, "max_latency_ms": 0, "duration_s": 60},
            {"throughput_mbps": 10, "max_latency_ms": 20, "duration_s": 0},
            {"throughput_mbps": -5, "max_latency_ms": 20, "duration_s": 60},
            {"throughput_mbps": 10, "max_latency_ms": 20, "duration_s": 60, "availability": 0.0},
            {"throughput_mbps": 10, "max_latency_ms": 20, "duration_s": 60, "availability": 1.5},
        ],
    )
    def test_invalid_sla_rejected(self, kwargs):
        with pytest.raises(SliceError):
            SLA(**kwargs)

    def test_sla_is_frozen(self):
        sla = SLA(throughput_mbps=10, max_latency_ms=20, duration_s=60)
        with pytest.raises(AttributeError):
            sla.throughput_mbps = 99


class TestSliceRequest:
    def test_auto_request_id(self):
        r1 = make_request()
        r2 = make_request()
        assert r1.request_id != r2.request_id
        assert r1.request_id.startswith("req-")

    def test_negative_price_rejected(self):
        with pytest.raises(SliceError):
            make_request(price=-1.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(SliceError):
            make_request(penalty_rate=-1.0)

    def test_expiry_time(self):
        request = make_request(duration_s=100.0, arrival_time=50.0)
        assert request.expiry_time == 150.0

    def test_price_density(self):
        request = make_request(throughput_mbps=10.0, duration_s=100.0, price=500.0)
        assert request.price_density() == pytest.approx(0.5)

    def test_zero_users_rejected(self):
        with pytest.raises(SliceError):
            make_request(n_users=0)


class TestStateMachine:
    def test_initial_state_pending(self):
        s = NetworkSlice(make_request())
        assert s.state is SliceState.PENDING
        assert not s.is_terminal

    def test_happy_path(self):
        s = NetworkSlice(make_request())
        s.transition(SliceState.ADMITTED, 1.0)
        s.transition(SliceState.DEPLOYING, 2.0)
        s.transition(SliceState.ACTIVE, 3.0)
        s.transition(SliceState.EXPIRED, 10.0)
        assert s.is_terminal
        assert s.admitted_at == 1.0
        assert s.active_at == 3.0
        assert s.expired_at == 10.0

    def test_rejection_path(self):
        s = NetworkSlice(make_request())
        s.transition(SliceState.REJECTED, 1.0)
        assert s.is_terminal

    def test_failure_from_active(self):
        s = NetworkSlice(make_request())
        s.transition(SliceState.ADMITTED, 1.0)
        s.transition(SliceState.DEPLOYING, 1.5)
        s.transition(SliceState.ACTIVE, 2.0)
        s.transition(SliceState.FAILED, 3.0)
        assert s.is_terminal

    @pytest.mark.parametrize(
        "bad_target",
        [SliceState.ACTIVE, SliceState.EXPIRED, SliceState.DEPLOYING],
    )
    def test_illegal_from_pending(self, bad_target):
        s = NetworkSlice(make_request())
        with pytest.raises(IllegalTransition):
            s.transition(bad_target, 1.0)

    def test_no_transition_out_of_terminal(self):
        s = NetworkSlice(make_request())
        s.transition(SliceState.REJECTED, 1.0)
        with pytest.raises(IllegalTransition):
            s.transition(SliceState.ADMITTED, 2.0)

    def test_history_records_transitions(self):
        s = NetworkSlice(make_request(arrival_time=0.5))
        s.transition(SliceState.ADMITTED, 1.0)
        assert s.history == [(0.5, SliceState.PENDING), (1.0, SliceState.ADMITTED)]

    def test_end_time_requires_activation(self):
        s = NetworkSlice(make_request(duration_s=60.0))
        assert s.end_time() is None
        s.transition(SliceState.ADMITTED, 1.0)
        s.transition(SliceState.DEPLOYING, 1.5)
        s.transition(SliceState.ACTIVE, 2.0)
        assert s.end_time() == 62.0


class TestEpochAccounting:
    def test_violation_ratio(self):
        s = NetworkSlice(make_request())
        s.record_epoch(False)
        s.record_epoch(True)
        s.record_epoch(True)
        s.record_epoch(False)
        assert s.violation_ratio() == pytest.approx(0.5)

    def test_violation_ratio_zero_when_unserved(self):
        assert NetworkSlice(make_request()).violation_ratio() == 0.0

    def test_to_dict_is_json_friendly(self):
        import json

        s = NetworkSlice(make_request())
        assert json.dumps(s.to_dict())

    def test_slice_id_derived_from_request(self):
        request = make_request()
        s = NetworkSlice(request)
        assert s.slice_id == request.request_id.replace("req-", "slice-")


def test_service_type_values():
    assert {t.value for t in ServiceType} == {
        "embb",
        "urllc",
        "mmtc",
        "automotive",
        "ehealth",
    }
