"""Tests for the revenue ledger."""

from __future__ import annotations

import pytest

from repro.core.pricing import LedgerError, RevenueLedger
from tests.conftest import make_request


@pytest.fixture
def ledger():
    return RevenueLedger()


def test_admission_books_price(ledger):
    ledger.book_admission("s1", make_request(price=50.0))
    assert ledger.gross_revenue == 50.0
    assert ledger.net_revenue == 50.0
    assert ledger.admissions == 1


def test_double_booking_rejected(ledger):
    ledger.book_admission("s1", make_request())
    with pytest.raises(LedgerError):
        ledger.book_admission("s1", make_request())


def test_penalty_reduces_net(ledger):
    ledger.book_admission("s1", make_request(price=100.0))
    ledger.book_penalty("s1", 10.0)
    ledger.book_penalty("s1", 5.0)
    assert ledger.total_penalties == 15.0
    assert ledger.net_revenue == 85.0
    assert ledger.entry("s1").violation_epochs == 2


def test_penalty_on_unknown_slice_rejected(ledger):
    with pytest.raises(LedgerError):
        ledger.book_penalty("ghost", 1.0)


def test_negative_penalty_rejected(ledger):
    ledger.book_admission("s1", make_request())
    with pytest.raises(LedgerError):
        ledger.book_penalty("s1", -1.0)


def test_rejections_tracked_separately(ledger):
    request = make_request(price=70.0)
    ledger.book_rejection(request, "no capacity", at_time=5.0)
    assert ledger.rejections == 1
    assert ledger.rejected_revenue == 70.0
    assert ledger.gross_revenue == 0.0
    record = ledger.rejection_records()[0]
    assert record.reason == "no capacity"
    assert record.at_time == 5.0


def test_acceptance_ratio(ledger):
    ledger.book_admission("s1", make_request())
    ledger.book_rejection(make_request(), "full", 0.0)
    assert ledger.acceptance_ratio() == pytest.approx(0.5)


def test_acceptance_ratio_no_decisions(ledger):
    assert ledger.acceptance_ratio() == 0.0


def test_entry_lookup_unknown_rejected(ledger):
    with pytest.raises(LedgerError):
        ledger.entry("ghost")


def test_entry_net(ledger):
    ledger.book_admission("s1", make_request(price=20.0))
    ledger.book_penalty("s1", 3.0)
    assert ledger.entry("s1").net == pytest.approx(17.0)


def test_summary_keys(ledger):
    ledger.book_admission("s1", make_request(price=10.0))
    summary = ledger.summary()
    assert summary["gross_revenue"] == 10.0
    assert set(summary) == {
        "gross_revenue",
        "total_penalties",
        "net_revenue",
        "rejected_revenue",
        "admissions",
        "rejections",
        "acceptance_ratio",
    }


def test_multiple_slices_accumulate(ledger):
    for i, price in enumerate((10.0, 20.0, 30.0)):
        ledger.book_admission(f"s{i}", make_request(price=price))
    assert ledger.gross_revenue == 60.0
    assert ledger.admissions == 3
