"""Tests for the trunk-reservation admission policy."""

from __future__ import annotations

import pytest

from repro.core.admission import (
    AdmissionError,
    ResourceVector,
    TrunkReservationPolicy,
)
from repro.core.orchestrator import Orchestrator
from repro.core.slices import ServiceType
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

CAP = ResourceVector(prbs=100.0, mbps=100.0, vcpus=100.0)


def policy(headroom=0.2):
    return TrunkReservationPolicy(capacity=CAP, headroom=headroom)


class TestUnit:
    def test_premium_admitted_into_headroom(self):
        request = make_request(service_type=ServiceType.URLLC)  # priority 3
        decision = policy().decide(
            request, ResourceVector(prbs=10.0), ResourceVector(prbs=15.0, mbps=100, vcpus=100)
        )
        assert decision.admitted
        assert "premium" in decision.reason

    def test_low_priority_blocked_in_headroom(self):
        request = make_request(service_type=ServiceType.EMBB)  # priority 1
        # Free is 25%; after admitting 10 prbs only 15% would remain < 20%.
        decision = policy(headroom=0.2).decide(
            request, ResourceVector(prbs=10.0), ResourceVector(prbs=25.0, mbps=100, vcpus=100)
        )
        assert not decision.admitted
        assert "headroom" in decision.reason

    def test_low_priority_admitted_below_threshold(self):
        request = make_request(service_type=ServiceType.EMBB)
        decision = policy(headroom=0.2).decide(
            request, ResourceVector(prbs=10.0), ResourceVector(prbs=50.0, mbps=100, vcpus=100)
        )
        assert decision.admitted

    def test_premium_still_needs_physical_fit(self):
        request = make_request(service_type=ServiceType.URLLC)
        decision = policy().decide(
            request, ResourceVector(prbs=20.0), ResourceVector(prbs=10.0, mbps=100, vcpus=100)
        )
        assert not decision.admitted

    def test_zero_headroom_is_plain_fcfs(self):
        request = make_request(service_type=ServiceType.EMBB)
        decision = policy(headroom=0.0).decide(
            request, ResourceVector(prbs=10.0), ResourceVector(prbs=10.0, mbps=100, vcpus=100)
        )
        assert decision.admitted

    def test_bad_headroom_rejected(self):
        with pytest.raises(AdmissionError):
            TrunkReservationPolicy(capacity=CAP, headroom=1.0)


class TestIntegration:
    def test_premium_acceptance_survives_congestion(self, testbed):
        """Fill the network with eMBB until trunk reservation blocks it,
        then verify a URLLC request still gets in."""
        sim = Simulator()
        capacity = testbed.allocator.aggregate_capacity_vector()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            admission=TrunkReservationPolicy(capacity=capacity, headroom=0.3),
            streams=RandomStreams(seed=15),
        )
        orch.start()
        embb_outcomes = []
        for _ in range(6):
            request = make_request(throughput_mbps=20.0, service_type=ServiceType.EMBB)
            decision = orch.submit(request, ConstantProfile(20.0, level=0.4))
            embb_outcomes.append(decision.admitted)
        assert not all(embb_outcomes)  # headroom eventually blocks eMBB
        urllc = make_request(
            throughput_mbps=5.0,
            service_type=ServiceType.URLLC,
            max_latency_ms=8.0,
        )
        decision = orch.submit(urllc, ConstantProfile(5.0, level=0.3))
        assert decision.admitted
