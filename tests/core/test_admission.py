"""Tests for the admission-control engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import (
    AdmissionError,
    FcfsPolicy,
    GreedyPricePolicy,
    KnapsackPolicy,
    OverbookingAwarePolicy,
    ResourceVector,
    default_penalty_estimator,
)
from tests.conftest import make_request


class TestResourceVector:
    def test_add(self):
        v = ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6)
        assert (v.prbs, v.mbps, v.vcpus) == (5, 7, 9)

    def test_sub_clamps_at_zero(self):
        v = ResourceVector(1, 2, 3) - ResourceVector(4, 1, 3)
        assert (v.prbs, v.mbps, v.vcpus) == (0, 1, 0)

    def test_negative_component_rejected(self):
        with pytest.raises(AdmissionError):
            ResourceVector(prbs=-1)

    def test_fits_within(self):
        cap = ResourceVector(10, 10, 10)
        assert ResourceVector(10, 10, 10).fits_within(cap)
        assert not ResourceVector(11, 1, 1).fits_within(cap)
        assert not ResourceVector(1, 1, 10.5).fits_within(cap)

    def test_max_fraction(self):
        cap = ResourceVector(100, 200, 10)
        demand = ResourceVector(50, 20, 5)
        assert demand.max_fraction_of(cap) == pytest.approx(0.5)

    def test_max_fraction_infinite_on_zero_capacity(self):
        assert ResourceVector(1, 0, 0).max_fraction_of(ResourceVector(0, 5, 5)) == float("inf")

    def test_max_fraction_zero_demand(self):
        assert ResourceVector().max_fraction_of(ResourceVector(1, 1, 1)) == 0.0

    def test_scale(self):
        v = ResourceVector(10, 20, 4).scale(0.5)
        assert (v.prbs, v.mbps, v.vcpus) == (5, 10, 2)

    def test_scale_negative_rejected(self):
        with pytest.raises(AdmissionError):
            ResourceVector(1, 1, 1).scale(-0.1)


class TestFcfs:
    def test_accepts_when_fits(self):
        decision = FcfsPolicy().decide(
            make_request(), ResourceVector(5, 5, 5), ResourceVector(10, 10, 10)
        )
        assert decision.admitted

    def test_rejects_when_overflow(self):
        decision = FcfsPolicy().decide(
            make_request(), ResourceVector(11, 5, 5), ResourceVector(10, 10, 10)
        )
        assert not decision.admitted
        assert "capacity" in decision.reason

    def test_batch_is_order_dependent(self):
        big = (make_request(price=10.0), ResourceVector(8, 8, 8))
        small = (make_request(price=100.0), ResourceVector(5, 5, 5))
        capacity = ResourceVector(10, 10, 10)
        decisions = FcfsPolicy().decide_batch([big, small], capacity)
        assert decisions[0].admitted and not decisions[1].admitted


class TestGreedy:
    def test_batch_prefers_value_dense(self):
        cheap_big = (make_request(price=10.0), ResourceVector(8, 8, 8))
        rich_small = (make_request(price=100.0), ResourceVector(5, 5, 5))
        capacity = ResourceVector(10, 10, 10)
        decisions = GreedyPricePolicy().decide_batch([cheap_big, rich_small], capacity)
        assert not decisions[0].admitted and decisions[1].admitted

    def test_rejects_non_positive_value(self):
        estimator = lambda request: request.price + 1.0
        policy = GreedyPricePolicy(penalty_estimator=estimator)
        decision = policy.decide(
            make_request(price=5.0), ResourceVector(1, 1, 1), ResourceVector(10, 10, 10)
        )
        assert not decision.admitted
        assert "value" in decision.reason

    def test_batch_preserves_candidate_order_in_output(self):
        candidates = [
            (make_request(price=float(p)), ResourceVector(1, 1, 1)) for p in (1, 2, 3)
        ]
        decisions = GreedyPricePolicy().decide_batch(candidates, ResourceVector(10, 10, 10))
        assert [d.request_id for d in decisions] == [
            c[0].request_id for c in candidates
        ]


class TestKnapsack:
    def test_beats_fcfs_on_adversarial_order(self):
        # FCFS takes the big cheap one first; knapsack should skip it.
        candidates = [
            (make_request(price=10.0), ResourceVector(90, 0, 0)),
            (make_request(price=60.0), ResourceVector(50, 0, 0)),
            (make_request(price=60.0), ResourceVector(50, 0, 0)),
        ]
        capacity = ResourceVector(100, 100, 100)
        knap = KnapsackPolicy().decide_batch(candidates, capacity)
        fcfs = FcfsPolicy().decide_batch(candidates, capacity)
        knap_value = sum(
            c[0].price for c, d in zip(candidates, knap) if d.admitted
        )
        fcfs_value = sum(
            c[0].price for c, d in zip(candidates, fcfs) if d.admitted
        )
        assert knap_value == pytest.approx(120.0)
        assert knap_value > fcfs_value

    def test_never_selects_infeasible(self):
        candidates = [(make_request(price=1000.0), ResourceVector(200, 0, 0))]
        decisions = KnapsackPolicy().decide_batch(candidates, ResourceVector(100, 100, 100))
        assert not decisions[0].admitted

    def test_selected_set_is_vector_feasible(self):
        rng = np.random.default_rng(0)
        candidates = [
            (
                make_request(price=float(rng.uniform(10, 100))),
                ResourceVector(
                    float(rng.uniform(1, 40)),
                    float(rng.uniform(1, 40)),
                    float(rng.uniform(1, 10)),
                ),
            )
            for _ in range(20)
        ]
        capacity = ResourceVector(100, 100, 32)
        decisions = KnapsackPolicy().decide_batch(candidates, capacity)
        total = ResourceVector()
        for (request, demand), decision in zip(candidates, decisions):
            if decision.admitted:
                total = total + demand
        assert total.fits_within(capacity)

    def test_low_resolution_rejected(self):
        with pytest.raises(AdmissionError):
            KnapsackPolicy(resolution=5)

    @settings(max_examples=30, deadline=None)
    @given(
        prices=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_knapsack_value_at_least_greedy(self, prices, seed):
        """Knapsack (optimal under the scalarization) ≥ greedy on the
        same scalarized instance when all demands stress one dimension."""
        rng = np.random.default_rng(seed)
        candidates = [
            (make_request(price=p), ResourceVector(prbs=float(rng.integers(1, 60))))
            for p in prices
        ]
        capacity = ResourceVector(prbs=100.0, mbps=1e9, vcpus=1e9)
        knap = KnapsackPolicy(resolution=100).decide_batch(candidates, capacity)
        greedy = GreedyPricePolicy().decide_batch(candidates, capacity)
        knap_value = sum(c[0].price for c, d in zip(candidates, knap) if d.admitted)
        greedy_value = sum(c[0].price for c, d in zip(candidates, greedy) if d.admitted)
        # Dominance by construction: knapsack keeps the better of
        # {DP + greedy fill, pure greedy}.
        assert knap_value >= greedy_value - 1e-6


class TestOverbookingAware:
    def test_admits_shrunk_demand(self):
        # Nominal does not fit; at 60% it does.
        policy = OverbookingAwarePolicy(shrink_factor=0.6)
        decision = policy.decide(
            make_request(), ResourceVector(15, 0, 0), ResourceVector(10, 10, 10)
        )
        assert decision.admitted
        assert "effective demand" in decision.reason

    def test_rejects_when_even_shrunk_overflow(self):
        policy = OverbookingAwarePolicy(shrink_factor=0.9)
        decision = policy.decide(
            make_request(), ResourceVector(15, 0, 0), ResourceVector(10, 10, 10)
        )
        assert not decision.admitted

    def test_bad_shrink_factor_rejected(self):
        with pytest.raises(AdmissionError):
            OverbookingAwarePolicy(shrink_factor=0.0)
        with pytest.raises(AdmissionError):
            OverbookingAwarePolicy(shrink_factor=1.2)


class TestPenaltyEstimator:
    def test_scales_with_duration_and_rate(self):
        estimator = default_penalty_estimator(risk=0.1)
        short = make_request(duration_s=600.0, penalty_rate=2.0)
        long = make_request(duration_s=6_000.0, penalty_rate=2.0)
        assert estimator(long) == pytest.approx(10 * estimator(short))

    def test_bad_risk_rejected(self):
        with pytest.raises(AdmissionError):
            default_penalty_estimator(risk=1.5)
