"""Tests for tenant-requested slice scaling (mid-life modification)."""

from __future__ import annotations

import pytest

from repro.api.routes import build_orchestrator_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=5),
    )
    orch.start()
    return testbed, sim, orch


def active_slice(sim, orch, mbps=20.0):
    request = make_request(throughput_mbps=mbps, duration_s=3_600.0)
    decision = orch.submit(request, ConstantProfile(mbps, level=0.5, noise_std=0.0))
    assert decision.admitted
    sim.run_until(sim.now + 10.0)
    return request.request_id.replace("req-", "slice-")


class TestRenominate:
    def test_prb_grid_renominate(self):
        from repro.ran.prb import PrbError, PrbGrid

        grid = PrbGrid(10.0)
        grid.reserve("s1", 20, 20)
        grid.renominate("s1", 40, 40)
        assert grid.reservation("s1").nominal == 40
        with pytest.raises(PrbError):
            grid.renominate("s1", 60, 60)  # > 50 budget
        # Old reservation intact after failure.
        assert grid.reservation("s1").nominal == 40

    def test_link_renominate(self):
        from repro.transport.links import Link, LinkError

        link = Link("l", "a", "b", capacity_mbps=100.0)
        link.reserve("s1", 40.0, 40.0)
        link.renominate("s1", 60.0, 60.0)
        assert link.residual_mbps == pytest.approx(40.0)
        with pytest.raises(LinkError):
            link.renominate("s1", 200.0, 200.0)
        assert link.nominal_reserved_mbps == pytest.approx(60.0)


class TestOrchestratorModify:
    def test_scale_up(self, stack):
        testbed, sim, orch = stack
        slice_id = active_slice(sim, orch, mbps=15.0)
        before = orch.slice(slice_id).allocation
        decision = orch.modify_slice(slice_id, 30.0)
        assert decision.admitted
        after = orch.slice(slice_id).allocation
        assert after.ran.nominal_prbs > before.ran.nominal_prbs
        assert after.transport.nominal_mbps == pytest.approx(30.0)
        assert orch.slice(slice_id).request.sla.throughput_mbps == 30.0
        assert orch.runtime(slice_id).profile.peak_mbps == 30.0

    def test_scale_down(self, stack):
        testbed, sim, orch = stack
        slice_id = active_slice(sim, orch, mbps=30.0)
        decision = orch.modify_slice(slice_id, 10.0)
        assert decision.admitted
        after = orch.slice(slice_id).allocation
        assert after.transport.nominal_mbps == pytest.approx(10.0)

    def test_scale_beyond_cell_rejected_and_unchanged(self, stack):
        testbed, sim, orch = stack
        slice_id = active_slice(sim, orch, mbps=20.0)
        before = orch.slice(slice_id).allocation
        decision = orch.modify_slice(slice_id, 300.0)
        assert not decision.admitted
        after = orch.slice(slice_id).allocation
        assert after.ran.nominal_prbs == before.ran.nominal_prbs
        assert after.transport.nominal_mbps == before.transport.nominal_mbps
        assert orch.slice(slice_id).request.sla.throughput_mbps == 20.0

    def test_modify_inactive_slice_rejected(self, stack):
        testbed, sim, orch = stack
        request = make_request()
        orch.submit(request, ConstantProfile(20.0, level=0.5))
        slice_id = request.request_id.replace("req-", "slice-")
        # Still DEPLOYING (deploy_time_s has not elapsed).
        decision = orch.modify_slice(slice_id, 10.0)
        assert not decision.admitted
        assert "not active" in decision.reason

    def test_path_and_cell_preserved(self, stack):
        testbed, sim, orch = stack
        slice_id = active_slice(sim, orch)
        before = orch.slice(slice_id).allocation
        orch.modify_slice(slice_id, 25.0)
        after = orch.slice(slice_id).allocation
        assert after.ran.enb_id == before.ran.enb_id
        assert after.transport.path.link_ids == before.transport.path.link_ids
        assert after.cloud.stack_id == before.cloud.stack_id

    def test_ran_rolled_back_when_transport_fails(self, stack):
        """Force a transport-only failure: fill the path link so the grow
        fits the cell but not the link."""
        testbed, sim, orch = stack
        slice_id = active_slice(sim, orch, mbps=10.0)
        network_slice = orch.slice(slice_id)
        path_links = network_slice.allocation.transport.path.link_ids
        # Consume the first path link's residual with a foreign reservation.
        link = testbed.transport.topology.link(path_links[0])
        link.reserve("squatter", link.residual_mbps, link.residual_mbps)
        before_prbs = network_slice.allocation.ran.nominal_prbs
        decision = orch.modify_slice(slice_id, 40.0)
        assert not decision.admitted
        enb = testbed.ran.enb(network_slice.allocation.ran.enb_id)
        assert enb.grid.reservation(slice_id).nominal == before_prbs


class TestApiPatch:
    def test_patch_route(self, stack):
        testbed, sim, orch = stack
        api = build_orchestrator_api(orch)
        slice_id = active_slice(sim, orch, mbps=15.0)
        response = api.patch(f"/slices/{slice_id}", body={"throughput_mbps": 25.0})
        assert response.status == 200
        assert orch.slice(slice_id).request.sla.throughput_mbps == 25.0

    def test_patch_missing_body_400(self, stack):
        testbed, sim, orch = stack
        api = build_orchestrator_api(orch)
        slice_id = active_slice(sim, orch)
        assert api.patch(f"/slices/{slice_id}", body={}).status == 400

    def test_patch_unknown_slice_404(self, stack):
        testbed, sim, orch = stack
        api = build_orchestrator_api(orch)
        assert api.patch("/slices/slice-999999", body={"throughput_mbps": 1.0}).status == 404

    def test_patch_infeasible_409(self, stack):
        testbed, sim, orch = stack
        api = build_orchestrator_api(orch)
        slice_id = active_slice(sim, orch)
        response = api.patch(f"/slices/{slice_id}", body={"throughput_mbps": 500.0})
        assert response.status == 409
