"""Tests for congestion pricing, refunds and early termination."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.core.pricing import LedgerError, RevenueLedger, UtilizationPricer
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


class TestUtilizationPricer:
    def test_idle_network_quotes_list_price(self):
        pricer = UtilizationPricer(base_rate_per_mbps_hour=2.0)
        quote = pricer.quote(throughput_mbps=10.0, duration_s=3_600.0, utilization=0.0)
        assert quote == pytest.approx(20.0)

    def test_multiplier_monotone_in_utilization(self):
        pricer = UtilizationPricer()
        multipliers = [pricer.multiplier(u / 10) for u in range(11)]
        assert multipliers == sorted(multipliers)
        assert multipliers[0] == pytest.approx(1.0)

    def test_convexity(self):
        """The congestion premium accelerates: the step from 0.8→0.9
        costs more than the step from 0.1→0.2."""
        pricer = UtilizationPricer(exponent=2.0)
        low_step = pricer.multiplier(0.2) - pricer.multiplier(0.1)
        high_step = pricer.multiplier(0.9) - pricer.multiplier(0.8)
        assert high_step > low_step

    def test_utilization_clipped(self):
        pricer = UtilizationPricer(slope=1.0)
        assert pricer.multiplier(1.5) == pricer.multiplier(1.0)
        assert pricer.multiplier(-0.5) == pricer.multiplier(0.0)

    def test_bad_params_rejected(self):
        with pytest.raises(LedgerError):
            UtilizationPricer(base_rate_per_mbps_hour=0.0)
        with pytest.raises(LedgerError):
            UtilizationPricer(slope=-1.0)
        with pytest.raises(LedgerError):
            UtilizationPricer(exponent=0.0)

    def test_bad_quote_inputs_rejected(self):
        pricer = UtilizationPricer()
        with pytest.raises(LedgerError):
            pricer.quote(0.0, 3_600.0, 0.5)
        with pytest.raises(LedgerError):
            pricer.quote(10.0, 0.0, 0.5)


class TestRefunds:
    def test_refund_reduces_price_and_net(self):
        ledger = RevenueLedger()
        ledger.book_admission("s1", make_request(price=100.0))
        ledger.book_refund("s1", 40.0)
        assert ledger.gross_revenue == pytest.approx(60.0)
        assert ledger.net_revenue == pytest.approx(60.0)

    def test_refund_beyond_price_rejected(self):
        ledger = RevenueLedger()
        ledger.book_admission("s1", make_request(price=100.0))
        with pytest.raises(LedgerError):
            ledger.book_refund("s1", 150.0)

    def test_refund_unknown_slice_rejected(self):
        with pytest.raises(LedgerError):
            RevenueLedger().book_refund("ghost", 1.0)

    def test_negative_refund_rejected(self):
        ledger = RevenueLedger()
        ledger.book_admission("s1", make_request())
        with pytest.raises(LedgerError):
            ledger.book_refund("s1", -1.0)


class TestEarlyTermination:
    @pytest.fixture
    def orch(self, testbed):
        sim = Simulator()
        orchestrator = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            streams=RandomStreams(seed=21),
        )
        orchestrator.start()
        return sim, orchestrator

    def test_pro_rata_refund(self, orch):
        sim, orchestrator = orch
        request = make_request(duration_s=1_000.0, price=100.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        slice_id = request.request_id.replace("req-", "slice-")
        sim.run_until(3.0 + 250.0)  # deploy 3 s + a quarter of the life
        refund = orchestrator.terminate_early(slice_id)
        assert refund == pytest.approx(75.0, rel=0.05)
        assert orchestrator.ledger.gross_revenue == pytest.approx(25.0, rel=0.2)
        # Resources reclaimed immediately.
        assert orchestrator.plmn_pool.available == orchestrator.plmn_pool.capacity

    def test_no_refund_option(self, orch):
        sim, orchestrator = orch
        request = make_request(duration_s=1_000.0, price=100.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        slice_id = request.request_id.replace("req-", "slice-")
        sim.run_until(100.0)
        assert orchestrator.terminate_early(slice_id, refund=False) == 0.0
        assert orchestrator.ledger.gross_revenue == 100.0

    def test_terminate_inactive_rejected(self, orch):
        sim, orchestrator = orch
        request = make_request()
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        slice_id = request.request_id.replace("req-", "slice-")
        with pytest.raises(OrchestratorError):
            orchestrator.terminate_early(slice_id)  # still DEPLOYING

    def test_delete_route_reports_refund(self, orch):
        from repro.api.routes import build_orchestrator_api

        sim, orchestrator = orch
        api = build_orchestrator_api(orchestrator)
        request = make_request(duration_s=1_000.0, price=100.0)
        orchestrator.submit(request, ConstantProfile(20.0, level=0.5))
        slice_id = request.request_id.replace("req-", "slice-")
        sim.run_until(503.0)
        response = api.delete(f"/slices/{slice_id}")
        assert response.ok
        assert response.body["refund"] == pytest.approx(50.0, rel=0.05)
