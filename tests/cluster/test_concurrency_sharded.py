"""Sharded-mode concurrency: parallel install batches on every shard.

The single-store concurrency suite pins conservation inside one
control plane; this one runs concurrent 12-job batches against both
shards *simultaneously* (each shard has its own lock domain, WAL and
southbound — nothing is shared but the router) and then asserts:

- conservation holds exactly in every domain of every shard
  (``held == Σ COMMITTED``),
- no reservation is stranded in a transient state,
- the router's merged view agrees with the sum of per-shard truths.

CI runs this file under the 3x concurrency repeat gate.
"""

from __future__ import annotations

import threading

import pytest

from repro.drivers.base import ReservationState
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.cluster.conftest import tenants_per_shard

MBPS = 5.0
BATCH = 12
STALLED = 3


def _committed_demand(driver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.list_reservations()
        if r.state is ReservationState.COMMITTED
    )


def test_parallel_batches_conserve_capacity_per_shard(cluster):
    owners = tenants_per_shard(cluster)
    decisions = {k: [] for k in owners}
    threads = []

    def run_batch(shard_id: int, tenant: str) -> None:
        shard = cluster.shard(shard_id)
        batch = [
            (
                make_request(throughput_mbps=MBPS, tenant=tenant),
                ConstantProfile(MBPS),
            )
            for _ in range(BATCH)
        ]
        decisions[shard_id].extend(
            shard.orchestrator.install_admitted_batch(batch)
        )

    for shard_id, tenant in owners.items():
        thread = threading.Thread(
            target=run_batch, args=(shard_id, tenant), daemon=True
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive()

    total_live = 0
    for shard_id in owners:
        shard = cluster.shard(shard_id)
        assert all(d.admitted for d in decisions[shard_id])
        live_ids = {s.slice_id for s in shard.orchestrator.live_slices()}
        assert len(live_ids) == BATCH
        total_live += len(live_ids)
        for driver in shard.testbed.registry.drivers():
            reservations = driver.list_reservations()
            assert {r.slice_id for r in reservations} == live_ids, driver.domain
            assert all(
                r.state is ReservationState.COMMITTED for r in reservations
            ), driver.domain
        firewall = shard.testbed.registry.get("firewall")
        assert firewall.held_mbps == pytest.approx(BATCH * MBPS)
        assert firewall.held_mbps == pytest.approx(_committed_demand(firewall))

    merged = cluster.router.get("/v1/slices?limit=500").body
    assert merged["total"] == total_live == BATCH * len(owners)


def test_stalled_commits_on_one_shard_do_not_block_the_other(cluster):
    """Shard isolation under chaos: shard 0's stalled southbound leaves
    shard 1's batch (and the router's path to it) unaffected."""
    owners = tenants_per_shard(cluster)
    stalled_shard = cluster.shard(0)
    firewall = stalled_shard.testbed.registry.get("firewall")
    firewall.stall(STALLED, kinds=("commit",))

    stalled_batch = [
        (
            make_request(throughput_mbps=MBPS, tenant=owners[0]),
            ConstantProfile(MBPS),
        )
        for _ in range(BATCH)
    ]
    stalled_decisions = []
    worker = threading.Thread(
        target=lambda: stalled_decisions.extend(
            stalled_shard.orchestrator.install_admitted_batch(stalled_batch)
        ),
        daemon=True,
    )
    worker.start()

    # While shard 0 is wedged, shard 1 installs its whole batch.
    other = cluster.shard(1)
    other_batch = [
        (
            make_request(throughput_mbps=MBPS, tenant=owners[1]),
            ConstantProfile(MBPS),
        )
        for _ in range(BATCH)
    ]
    other_decisions = other.orchestrator.install_admitted_batch(other_batch)
    assert all(d.admitted for d in other_decisions)
    assert len(other.orchestrator.live_slices()) == BATCH

    firewall.release_stall()
    worker.join(timeout=60.0)
    assert not worker.is_alive()
    assert all(d.admitted for d in stalled_decisions)
    assert firewall.held_mbps == pytest.approx(BATCH * MBPS)
