"""Cross-shard semantics of the :class:`ShardRouter`.

The contracts the sharded v1 surface must keep indistinguishable from
a single shard's:

- merged pagination is duplicate-free, globally ordered, and
  seam-consistent (no item appears on two pages, none falls between),
- the merged durable event feed's vector cursor never replays and
  never skips an event, no matter the page size,
- per-tenant quotas hold across a shard leader's death and promotion,
- tenant-affine calls land on exactly the ring-assigned shard.
"""

from __future__ import annotations

import time

from repro.cluster import VectorCursor

from tests.cluster.conftest import (
    LEASE_TIMEOUT_S,
    slice_body,
    tenants_per_shard,
)


def _create(router, tenant, n=1, **overrides):
    ids = []
    for _ in range(n):
        response = router.post(
            "/v1/slices",
            body=slice_body(tenant, **overrides),
            headers={"x-tenant-id": tenant},
        )
        assert response.status == 201, response.body
        ids.append(response.body["slice_id"])
    return ids


class TestTenantAffinity:
    def test_create_lands_on_ring_assigned_shard(self, cluster):
        owners = tenants_per_shard(cluster)
        for shard_id, tenant in owners.items():
            (slice_id,) = _create(cluster.router, tenant)
            shard = cluster.shard(shard_id)
            local = {s.slice_id for s in shard.orchestrator.live_slices()}
            assert slice_id in local
            for other_id, other in enumerate(cluster.shards):
                if other_id != shard_id:
                    foreign = {
                        s.slice_id for s in other.orchestrator.live_slices()
                    }
                    assert slice_id not in foreign

    def test_detail_reads_route_and_scatter(self, cluster):
        owners = tenants_per_shard(cluster)
        created = {
            tenant: _create(cluster.router, tenant)[0]
            for tenant in owners.values()
        }
        for tenant, slice_id in created.items():
            scoped = cluster.router.get(
                f"/v1/slices/{slice_id}", headers={"x-tenant-id": tenant}
            )
            assert scoped.status == 200
            # Unscoped: scatter-gather still finds the one owner.
            unscoped = cluster.router.get(f"/v1/slices/{slice_id}")
            assert unscoped.status == 200
            assert unscoped.body["slice_id"] == slice_id
        assert cluster.router.get("/v1/slices/slice-999999").status == 404


class TestMergedPagination:
    def test_pages_are_duplicate_free_ordered_and_seamless(self, cluster):
        owners = tenants_per_shard(cluster)
        expected = set()
        for tenant in owners.values():
            expected.update(_create(cluster.router, tenant, n=5))

        walked = []
        offset, limit = 0, 3
        while True:
            page = cluster.router.get(
                f"/v1/slices?limit={limit}&offset={offset}"
            ).body
            assert page["total"] == len(expected)
            if not page["slices"]:
                break
            walked.extend(s["slice_id"] for s in page["slices"])
            offset += limit
        # Every slice exactly once, in global order, across page seams.
        assert walked == sorted(walked)
        assert len(walked) == len(set(walked))
        assert set(walked) == expected

    def test_items_carry_their_shard(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant, n=2)
        listing = cluster.router.get("/v1/slices").body
        shards_seen = {s["shard"] for s in listing["slices"]}
        assert shards_seen == set(owners)

    def test_tenant_filter_restricts_to_owner_shard(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant, n=2)
        shard_id, tenant = next(iter(owners.items()))
        page = cluster.router.get(
            "/v1/slices", headers={"x-tenant-id": tenant}
        ).body
        assert page["total"] == 2
        assert {s["shard"] for s in page["slices"]} == {shard_id}


class TestVectorCursor:
    def test_roundtrip_and_scalar_broadcast(self):
        cursor = VectorCursor.parse("0:15,1:7", 2)
        assert cursor.encode() == "0:15,1:7"
        scalar = VectorCursor.parse("42", 3)
        assert scalar.positions == {0: 42, 1: 42, 2: 42}

    def test_malformed_cursors_are_rejected(self, cluster):
        for bad in ("xx:3", "0:-1", "9:3", "0:1,zz", "-5"):
            response = cluster.router.get(f"/v1/events?after_lsn={bad}")
            assert response.status == 400, bad
            assert response.body["error"]["code"] == "invalid_parameter"
        assert cluster.router.get("/v1/events?since=0").status == 400

    def test_drain_never_replays_never_skips(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant, n=4)
        cluster.run_until(120.0)

        # Ground truth: each shard's full durable feed.
        expected = set()
        for shard in cluster.shards:
            feed = shard.service.events_since(
                {"after_lsn": "0", "limit": "1000"}, None
            )
            expected.update((shard.shard_id, e["lsn"]) for e in feed["events"])
        assert expected

        # Walk the merged feed in tiny pages via the vector cursor.
        seen = []
        cursor = "0"
        for _ in range(1000):
            page = cluster.router.get(
                f"/v1/events?after_lsn={cursor}&limit=3"
            ).body
            if not page["events"]:
                break
            seen.extend((e["shard"], e["lsn"]) for e in page["events"])
            cursor = page["next_after_lsn"]
        else:
            raise AssertionError("cursor walk failed to terminate")

        assert len(seen) == len(set(seen)), "cursor replayed an event"
        assert set(seen) == expected, "cursor skipped events"

    def test_page_merge_is_deterministically_ordered(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant, n=3)
        page = cluster.router.get("/v1/events?after_lsn=0&limit=50").body
        keys = [
            (e.get("time", 0.0), e["shard"], e["lsn"]) for e in page["events"]
        ]
        assert keys == sorted(keys)


class TestQuotaAcrossFailover:
    def test_quota_survives_leader_death_and_promotion(self, cluster):
        owners = tenants_per_shard(cluster)
        shard_id, tenant = next(iter(owners.items()))
        shard = cluster.shard(shard_id)
        shard.service.set_quota(tenant, max_active_slices=2)

        _create(cluster.router, tenant, n=2)
        over = cluster.router.post(
            "/v1/slices",
            body=slice_body(tenant),
            headers={"x-tenant-id": tenant},
        )
        assert over.status == 429
        assert over.body["error"]["code"] == "quota_exceeded"

        # Kill the leader; promote the standby; the ceiling holds.
        standby = cluster.standby_for(shard_id)
        standby.poll()
        cluster.kill_leader(shard_id)
        time.sleep(LEASE_TIMEOUT_S * 3)
        promotion = standby.tick()
        assert promotion is not None
        cluster.adopt_promotion(shard_id, promotion)
        assert promotion.report.slices_lost == 0

        still_over = cluster.router.post(
            "/v1/slices",
            body=slice_body(tenant),
            headers={"x-tenant-id": tenant},
        )
        assert still_over.status == 429, still_over.body
        assert still_over.body["error"]["code"] == "quota_exceeded"


class TestAdminFanout:
    def test_merged_metrics_carry_shard_labels(self, tmp_path):
        from tests.cluster.conftest import build_cluster

        cluster = build_cluster(
            tmp_path,
            orchestrator={"monitoring_epoch_s": 60.0, "observability": True},
        )
        try:
            owners = tenants_per_shard(cluster)
            for tenant in owners.values():
                _create(cluster.router, tenant)
            response = cluster.router.get("/v1/admin/metrics")
            assert response.status == 200
            assert response.text is not None
            samples = [
                line
                for line in response.text.splitlines()
                if line and not line.startswith("#")
            ]
            assert samples
            assert all('shard="' in line for line in samples)
            declared = [
                line
                for line in response.text.splitlines()
                if line.startswith("# TYPE")
            ]
            assert len(declared) == len(set(declared)), "duplicate TYPE lines"
        finally:
            cluster.close()

    def test_admin_state_aggregates_across_shards(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant, n=2)
        state = cluster.router.get("/v1/admin/state").body
        assert state["cluster"]["shard_count"] == cluster.config.shards
        assert state["cluster"]["live_slices"] == 2 * len(owners)
        assert set(state["shards"]) == {str(k) for k in owners}

    def test_checkpoint_fans_out(self, cluster):
        owners = tenants_per_shard(cluster)
        for tenant in owners.values():
            _create(cluster.router, tenant)
        response = cluster.router.post("/v1/admin/checkpoint")
        assert response.status == 200
        assert set(response.body["shards"]) == {str(k) for k in owners}
