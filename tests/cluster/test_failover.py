"""The failover drill: SIGKILL a shard leader mid-16-job-batch.

The sharded generalization of the single-store chaos suite, and the
acceptance drill of the cluster subsystem:

1. a warm standby tails shard 0's journal while the leader serves,
2. a 16-job concurrent batch launches with the ``firewall`` chaos
   domain stalling 4 southbound commits mid-flight,
3. the leader is SIGKILLed (journal stops accepting writes, monitoring
   stops, the lease is never heartbeat again) while commits are parked,
4. the southbound finishes the in-flight work,
5. the standby detects the stale lease, promotes itself (epoch-bumped
   lease takeover + RecoveryManager reconciliation over the surviving
   southbound), and the cluster adopts it.

Invariants: **zero lost** COMMITTED slices, **zero leaked**
reservations (``held == Σ COMMITTED`` exactly), the other shard serves
uninterrupted throughout, and the durable event feed resumes past the
promotion's replay floor.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cluster.standby import StandbyError
from repro.drivers.base import ReservationState
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.cluster.conftest import LEASE_TIMEOUT_S, slice_body, tenants_per_shard

MBPS = 5.0
FIRST_WAVE = 4
BATCH = 16
STALLED = 4
KILLED = 0  # the shard whose leader dies


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def _committed_demand(driver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.list_reservations()
        if r.state is ReservationState.COMMITTED
    )


def test_leader_sigkill_mid_batch_promotes_standby(cluster):
    router = cluster.router
    owners = tenants_per_shard(cluster)
    victim_tenant = owners[KILLED]
    other_shard = next(k for k in owners if k != KILLED)
    other_tenant = owners[other_shard]
    leader = cluster.shard(KILLED)
    firewall = leader.testbed.registry.get("firewall")

    # --- 1. acknowledged churn + a warm standby tailing the WAL -----------
    for _ in range(FIRST_WAVE):
        response = router.post(
            "/v1/slices",
            body=slice_body(victim_tenant, throughput_mbps=MBPS),
            headers={"x-tenant-id": victim_tenant},
        )
        assert response.status == 201, response.body
    standby = cluster.standby_for(KILLED)
    assert standby.poll() > 0  # warm: the wave is already folded
    assert standby.leader_alive()
    with pytest.raises(StandbyError):
        standby.promote()  # refuses to split-brain a live leader

    # --- 2. the 16-job batch, 4 commits stalled mid-flight ----------------
    batch = [
        (
            make_request(throughput_mbps=MBPS, tenant=victim_tenant),
            ConstantProfile(MBPS),
        )
        for _ in range(BATCH)
    ]
    firewall.stall(STALLED, kinds=("commit",))
    batch_decisions = []

    def run_batch() -> None:
        batch_decisions.extend(leader.orchestrator.install_admitted_batch(batch))

    worker = threading.Thread(target=run_batch, daemon=True)
    worker.start()
    assert _wait_until(lambda: firewall.stalled_ops >= STALLED), (
        f"only {firewall.stalled_ops}/{STALLED} commits reached the stall gate"
    )

    # --- 3. SIGKILL the leader --------------------------------------------
    cluster.kill_leader(KILLED)
    assert leader.dead

    # --- 4. the southbound finishes what was in flight --------------------
    firewall.release_stall()
    worker.join(timeout=30.0)
    assert not worker.is_alive()
    assert all(d.admitted for d in batch_decisions)  # southbound truth

    # The *other* shard serves through the outage.
    response = router.post(
        "/v1/slices",
        body=slice_body(other_tenant),
        headers={"x-tenant-id": other_tenant},
    )
    assert response.status == 201, response.body

    # --- 5. the standby notices and promotes ------------------------------
    time.sleep(LEASE_TIMEOUT_S * 3)  # the heartbeat goes stale
    assert not standby.leader_alive()
    promotion = standby.tick()
    assert promotion is not None
    assert promotion.shard_id == KILLED
    assert promotion.recovery_s > 0.0
    assert promotion.lease.epoch >= 2  # epoch-bumped past the leader's
    cluster.adopt_promotion(KILLED, promotion)

    # Zero lost: the acked wave AND the whole mid-flight batch (the
    # southbound committed all of it) are adopted.
    report = promotion.report
    assert report.slices_lost == 0, report.lost_slice_ids
    assert report.slices_adopted == FIRST_WAVE + BATCH
    promoted = cluster.shard(KILLED)
    live_ids = {s.slice_id for s in promoted.orchestrator.live_slices()}
    assert len(live_ids) == FIRST_WAVE + BATCH

    # Zero leaked: every domain of the shard holds exactly the adopted
    # slices, all COMMITTED; held == Σ COMMITTED exactly.
    for driver in leader.testbed.registry.drivers():
        reservations = driver.list_reservations()
        assert {r.slice_id for r in reservations} == live_ids, driver.domain
        assert all(
            r.state is ReservationState.COMMITTED for r in reservations
        ), driver.domain
    assert firewall.held_mbps == pytest.approx((FIRST_WAVE + BATCH) * MBPS)
    assert firewall.held_mbps == pytest.approx(_committed_demand(firewall))

    # --- the router now serves the promoted shard -------------------------
    listing = router.get(
        "/v1/slices", headers={"x-tenant-id": victim_tenant}
    )
    assert listing.status == 200
    assert listing.body["total"] == FIRST_WAVE + BATCH

    # The durable feed resumes past the promotion's replay floor: a
    # consumer resuming at the floor sees only post-recovery history.
    floor = promotion.replay_floor_lsn
    assert floor > 0
    cursor = ",".join(
        f"{k}:{floor if k == KILLED else 0}" for k in sorted(owners)
    )
    feed = router.get(f"/v1/events?after_lsn={cursor}&limit=1000")
    assert feed.status == 200, feed.body
    killed_shard_events = [
        e for e in feed.body["events"] if e["shard"] == KILLED
    ]
    assert all(e["lsn"] > floor for e in killed_shard_events)
    assert int(feed.body["replay_floor_lsn"][str(KILLED)]) == floor

    # The drill artifact is JSON-safe (the nightly job uploads it).
    json.dumps(promotion.to_dict())


def test_promotion_is_idempotent_and_fences_late_heartbeats(cluster):
    """A paused-but-alive leader is deposed the moment it heartbeats
    after the standby's epoch-bumped takeover (the classic
    false-suspicion case)."""
    owners = tenants_per_shard(cluster)
    leader = cluster.shard(KILLED)
    cluster.router.post(
        "/v1/slices",
        body=slice_body(owners[KILLED]),
        headers={"x-tenant-id": owners[KILLED]},
    )
    standby = cluster.standby_for(KILLED)
    standby.poll()

    # Force-promote over the *paused* (not dead) leader.
    promotion = standby.promote(force=True)
    assert promotion is standby.promote()  # idempotent

    # The old leader's next heartbeat fails and it fences itself:
    # its store closes (crash semantics — writes dropped).
    assert leader.lease.heartbeat() is False
    assert leader.store.journal.closed is False  # not yet fenced...
    leader.orchestrator._monitoring_epoch()  # ...until its next epoch
    assert leader.store.journal.closed is True
    assert leader.orchestrator.lease is None
