"""Shared fixtures for the sharded control-plane suite: a 2-shard
durable cluster whose per-shard testbeds carry a pure-mock ``firewall``
chaos domain (exact held-capacity accounting, stallable commits), plus
tenant helpers that deterministically land traffic on a chosen shard.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.cluster import ClusterConfig, ControlPlaneCluster
from repro.drivers.mock import MockDriver
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed

SHARDS = 2
#: Short wall-clock lease so leader-death detection costs the suite
#: milliseconds, not the production 5 s timeout.
LEASE_TIMEOUT_S = 0.05


def chaos_testbed() -> Testbed:
    """One shard's southbound, scaled for 16-job batches, with the
    ``firewall`` chaos domain."""
    testbed = build_testbed(
        TestbedConfig(n_enbs=4, max_plmns_per_enb=12, plmn_pool_size=40)
    )
    testbed.registry.register(
        MockDriver("firewall", capacity_mbps=100_000.0, max_concurrent_installs=8)
    )
    return testbed


def build_cluster(tmp_path, shards: int = SHARDS, **overrides) -> ControlPlaneCluster:
    """A durable cluster with chaos testbeds, one journal namespace per
    shard under ``tmp_path / "store"``."""
    overrides.setdefault("orchestrator", {"monitoring_epoch_s": 60.0})
    config = ClusterConfig(
        shards=shards,
        durability_root=str(tmp_path / "store"),
        lease_timeout_s=LEASE_TIMEOUT_S,
        **overrides,
    )
    return ControlPlaneCluster(
        config, testbeds=[chaos_testbed() for _ in range(shards)]
    )


def tenants_per_shard(cluster: ControlPlaneCluster) -> Dict[int, str]:
    """One deterministic tenant per shard (the ring is seedless and
    stable, so ``tenant-<i>`` placement never changes between runs)."""
    owners: Dict[int, str] = {}
    for i in range(256):
        tenant = f"tenant-{i}"
        owners.setdefault(cluster.ring.shard_for(tenant), tenant)
        if len(owners) == cluster.config.shards:
            return owners
    raise AssertionError("ring failed to cover every shard in 256 tenants")


def slice_body(tenant: str, **overrides) -> dict:
    body = {
        "service_type": "embb",
        "throughput_mbps": 5.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
        "tenant_id": tenant,
    }
    body.update(overrides)
    return body


@pytest.fixture
def cluster(tmp_path):
    built = build_cluster(tmp_path)
    yield built
    built.close()
