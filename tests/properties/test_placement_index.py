"""Property-based equivalence of the delta-maintained placement index.

``RanController.best_enb_for`` answers from a sorted free-capacity
index updated incrementally on every install/resize/modify/remove (and
consulted with ``PlannedCellLoad`` staging overlaid).  These tests
drive randomized operation schedules and assert, after every step,
that:

- the index matches a from-scratch recompute (``verify_index``),
- ``best_enb_for`` — with and without planned staging — returns exactly
  what the historical O(#eNB) full scan returned, including its
  tie-break (earliest-registered cell wins equal free PRBs),
- the O(1) fleet aggregates (``total_free_prbs``/``max_free_prbs``)
  match their sums,
- the allocator's delta-maintained uplink aggregates survive direct
  link mutations that bypass the transport controller,
- the datacenter's best-fit index answers exactly like
  ``BestFitPlacement``'s ``min`` scan under random boot/destroy churn.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.slices import PLMN
from repro.ran.controller import PlannedCellLoad, RanController
from repro.ran.enb import ENodeB, RanConfigError
from repro.ran.prb import PrbError

EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

SLOW = settings(
    max_examples=25 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def reference_best_enb_for(
    controller: RanController,
    effective_prbs: int,
    planned: Optional[Dict[str, PlannedCellLoad]] = None,
) -> Optional[str]:
    """The historical full scan ``best_enb_for`` replaced: walk every
    cell in registration order, strictly-greater free PRBs wins (so the
    earliest-registered cell keeps ties)."""
    planned = planned or {}
    none_pending = PlannedCellLoad()
    best = None
    best_free = effective_prbs - 1
    for enb in controller.enbs():
        pending = planned.get(enb.enb_id, none_pending)
        if enb.installed_count() + pending.slices >= enb.max_plmns:
            continue
        free = enb.grid.free_prbs - pending.prbs
        if free >= effective_prbs and free > best_free:
            best, best_free = enb.enb_id, free
    return best


def _check_equivalence(controller: RanController, planned=None) -> None:
    controller.verify_index()
    frees = [enb.grid.free_prbs for enb in controller.enbs()]
    assert controller.total_free_prbs() == sum(frees)
    assert controller.max_free_prbs() == (max(frees) if frees else 0)
    # Probe a spread of demands, including the boundary values where
    # the index scan's break conditions fire.
    probes = {1, 5, 20, 50, 100, max(frees, default=1), max(frees, default=1) + 1}
    for demand in probes:
        if demand <= 0:
            continue
        assert controller.best_enb_for(10.0, demand, planned) == reference_best_enb_for(
            controller, demand, planned
        ), f"index disagrees with full scan for demand={demand} planned={planned}"


#: One schedule step: (action selector, cell selector, PRB/throughput
#: magnitude, overbooking fraction).
STEP = st.tuples(
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=9),
    st.floats(min_value=1.0, max_value=120.0),
    st.floats(min_value=0.25, max_value=1.0),
)


@SLOW
@given(
    n_enbs=st.integers(min_value=1, max_value=6),
    max_plmns=st.integers(min_value=1, max_value=4),
    steps=st.lists(STEP, min_size=1, max_size=40),
)
def test_index_matches_full_recompute_under_random_schedules(
    n_enbs, max_plmns, steps
):
    """After any install/resize/modify/remove schedule the index answers
    exactly like the historical full scan."""
    controller = RanController(
        [
            ENodeB(f"enb{i}", bandwidth_mhz=10.0, max_plmns=max_plmns)
            for i in range(n_enbs)
        ]
    )
    installed: list = []
    counter = 0
    for action, which, magnitude, fraction in steps:
        kind = action % 4
        if kind == 0 or not installed:  # install
            counter += 1
            slice_id = f"s{counter}"
            plmn = PLMN("001", f"{counter % 100:02d}")
            try:
                controller.install_slice(
                    slice_id, plmn, magnitude, effective_fraction=fraction
                )
            except RanConfigError:
                pass  # fleet full — a legal outcome, index must still hold
            else:
                installed.append(slice_id)
        elif kind == 1:  # resize
            slice_id = installed[which % len(installed)]
            try:
                controller.resize_slice(slice_id, max(1, int(magnitude)))
            except (RanConfigError, PrbError):
                pass  # growth illegal or did not fit — reservation unchanged
        elif kind == 2:  # modify (re-dimension to a new SLA)
            slice_id = installed[which % len(installed)]
            try:
                controller.modify_slice(slice_id, magnitude, fraction)
            except RanConfigError:
                pass
        else:  # remove
            slice_id = installed.pop(which % len(installed))
            controller.remove_slice(slice_id)
        _check_equivalence(controller)


@SLOW
@given(
    n_enbs=st.integers(min_value=1, max_value=6),
    max_plmns=st.integers(min_value=1, max_value=4),
    installs=st.lists(
        st.floats(min_value=1.0, max_value=80.0), min_size=0, max_size=8
    ),
    staged=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),  # cell selector
            st.integers(min_value=0, max_value=60),  # staged PRBs
        ),
        min_size=0,
        max_size=10,
    ),
)
def test_planned_load_accounting_matches_full_scan(
    n_enbs, max_plmns, installs, staged
):
    """Staged-but-uninstalled load (``PlannedCellLoad``) is accounted
    identically by the index path and the full scan — each batch pick
    must see the picks before it."""
    controller = RanController(
        [
            ENodeB(f"enb{i}", bandwidth_mhz=10.0, max_plmns=max_plmns)
            for i in range(n_enbs)
        ]
    )
    for i, throughput in enumerate(installs):
        try:
            controller.install_slice(f"s{i}", PLMN("001", f"{i:02d}"), throughput)
        except RanConfigError:
            pass
    planned: Dict[str, PlannedCellLoad] = {}
    for which, prbs in staged:
        enb_id = f"enb{which % n_enbs}"
        planned.setdefault(enb_id, PlannedCellLoad()).add(prbs)
        _check_equivalence(controller, planned)
    # A planned entry for a cell that no longer exists must be skipped,
    # exactly like the full scan skips it.
    planned["enb-gone"] = PlannedCellLoad(prbs=5, slices=1)
    _check_equivalence(controller, planned)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99),  # action selector
            st.integers(min_value=0, max_value=19),  # link selector
            st.floats(min_value=1.0, max_value=200.0),  # bandwidth
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_uplink_aggregates_survive_direct_link_churn(seed, steps):
    """The allocator's cached uplink max/sum stay equal to a recompute
    even when links are failed/restored/reserved *directly* (bypassing
    the transport controller), via the topology's dirty-node feed."""
    from repro.experiments.testbed import build_testbed

    testbed = build_testbed()
    allocator = testbed.allocator
    topology = testbed.transport.topology
    links = topology.links()
    reserved: list = []
    counter = 0
    for action, which, bandwidth in steps:
        link = links[which % len(links)]
        kind = action % 4
        if kind == 0:
            link.fail()
        elif kind == 1:
            link.restore()
        elif kind == 2:
            counter += 1
            slice_id = f"p{counter}"
            try:
                link.reserve(slice_id, bandwidth, bandwidth)
            except Exception:
                pass  # over capacity — reservation refused, state unchanged
            else:
                reserved.append((link, slice_id))
        elif reserved:
            link_held, slice_id = reserved.pop((action // 4) % len(reserved))
            link_held.release(slice_id)
        allocator.verify_uplink_aggregates()
        # The vectors the hot path serves must equal a recompute.
        best_by_node = {}
        for enb in testbed.ran.enbs():
            node = enb.transport_node
            if node not in best_by_node:
                best_by_node[node] = max(
                    (
                        l.residual_mbps
                        for l in topology.out_links(node)
                        if l.up
                    ),
                    default=0.0,
                )
        expected_max = max(best_by_node.values(), default=0.0)
        expected_sum = sum(
            best_by_node[enb.transport_node] for enb in testbed.ran.enbs()
        )
        assert abs(allocator.free_vector().mbps - expected_max) < 1e-6
        assert abs(allocator.aggregate_free_vector().mbps - expected_sum) < 1e-6


@SLOW
@given(
    n_nodes=st.integers(min_value=1, max_value=6),
    vcpus=st.integers(min_value=2, max_value=12),
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99),  # action selector
            st.integers(min_value=0, max_value=9),  # VM selector
            st.sampled_from(
                ["m1.tiny", "m1.small", "m1.medium", "m1.large", "m1.xlarge"]
            ),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_datacenter_fit_index_matches_best_fit_scan(n_nodes, vcpus, steps):
    """Under random boot/destroy churn the DC's sorted free-capacity
    index stays consistent (``verify_fit_index``) and ``best_fit_node``
    returns exactly the node ``BestFitPlacement``'s ``min`` scan picks,
    for every flavor size."""
    from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
    from repro.cloud.datacenter import VirtualMachine
    from repro.cloud.flavors import FLAVORS, flavor
    from repro.cloud.placement import BestFitPlacement

    dc = Datacenter(
        "dc-prop",
        DatacenterTier.EDGE,
        nodes=[
            ComputeNode(f"n{i}", vcpus=vcpus, ram_gb=4.0 * vcpus, disk_gb=500.0)
            for i in range(n_nodes)
        ],
    )
    policy = BestFitPlacement()
    booted: list = []
    counter = 0
    for action, which, flavor_name in steps:
        if action % 3 != 0 or not booted:  # boot (2/3 of steps)
            counter += 1
            vm = VirtualMachine(f"vm{counter}", flavor(flavor_name))
            node = dc.best_fit_node(vm.flavor)
            if node is not None:
                node.boot(vm)
                booted.append(vm)
        else:  # destroy
            vm = booted.pop(which % len(booted))
            dc.node(vm.node_id).destroy(vm.vm_id)
        dc.verify_fit_index()
        for probe in FLAVORS.values():
            expected = policy.choose_node(dc.nodes(), probe)
            got = dc.best_fit_node(probe)
            assert (got.node_id if got else None) == (
                expected.node_id if expected else None
            ), f"fit index disagrees with best-fit scan for {probe.name}"
