"""Property-based invariants of the concurrent install engine.

Randomized schedules of concurrent installs and cancels run against a
multi-domain :class:`~repro.drivers.mock.MockDriver` registry through
the :class:`~repro.drivers.planner.BatchInstallPlanner`, with prepare/
commit/release failures injected at random.  After quiescence the
conservation invariant must hold *exactly* in every domain:

    physically held capacity  ==  Σ demand of COMMITTED reservations

and no reservation may be stranded in a transient state (PREPARED /
mid-unwind).  This is the concurrent generalization of the zero-residue
rollback invariant the sequential transaction tests pin down.
"""

from __future__ import annotations

import os
import threading
from typing import List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.drivers.base import DomainSpec, ReservationState
from repro.drivers.mock import MockDriver
from repro.drivers.planner import BatchInstallPlanner, InstallJob
from repro.drivers.registry import DriverRegistry

DOMAINS = ("radio", "path", "compute")

#: The nightly CI flake-hunt multiplies every property suite's example
#: budget (HYPOTHESIS_EXAMPLE_MULTIPLIER=5) without touching the fast
#: per-push defaults.
EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

SLOW = settings(
    max_examples=12 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: One randomized operation of the schedule.
operation = st.one_of(
    st.tuples(st.just("install"), st.floats(min_value=1.0, max_value=40.0)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
    st.tuples(st.just("fail_prepare"), st.integers(min_value=0, max_value=2)),
    st.tuples(st.just("fail_commit"), st.integers(min_value=0, max_value=2)),
    st.tuples(st.just("fail_release"), st.integers(min_value=0, max_value=2)),
)


def _committed_demand(driver: MockDriver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.reservations()
        if r.state is ReservationState.COMMITTED
    )


@SLOW
@given(
    ops=st.lists(operation, min_size=1, max_size=24),
    capacity=st.floats(min_value=50.0, max_value=400.0),
    batch_size=st.integers(min_value=1, max_value=8),
)
def test_concurrent_schedule_conserves_capacity(ops, capacity, batch_size):
    """After any randomized concurrent install/cancel/failure schedule,
    total reserved capacity equals the sum of COMMITTED reservations."""
    registry = DriverRegistry(
        [
            MockDriver(domain=d, capacity_mbps=capacity, max_concurrent_installs=4)
            for d in DOMAINS
        ]
    )
    planner = BatchInstallPlanner(registry, max_workers=4, batch_size=batch_size)
    counter = [0]
    installed: List[str] = []  # slice ids whose install committed
    pending_jobs: List[InstallJob] = []

    def flush_installs() -> None:
        if not pending_jobs:
            return
        jobs, pending_jobs[:] = list(pending_jobs), []
        for outcome in planner.install(jobs):
            if outcome.ok:
                installed.append(outcome.job.slice_id)

    def release_all(slice_id: str) -> None:
        """Concurrent cancel: free the slice in every domain (reverse
        install order), tolerating injected release failures — a failed
        release must leave the reservation COMMITTED (retryable), never
        stranded."""
        for domain in reversed(DOMAINS):
            driver = registry.get(domain)
            try:
                driver.release(slice_id)
            except Exception:
                continue

    cancel_threads: List[threading.Thread] = []
    for op, value in ops:
        if op == "install":
            counter[0] += 1
            slice_id = f"s{counter[0]:03d}"
            pending_jobs.append(
                InstallJob(
                    slice_id=slice_id,
                    attempts=[
                        {
                            d: DomainSpec(slice_id=slice_id, throughput_mbps=value)
                            for d in DOMAINS
                        }
                    ],
                )
            )
        elif op == "cancel":
            flush_installs()
            if installed:
                victim = installed.pop(value % len(installed))
                thread = threading.Thread(target=release_all, args=(victim,))
                thread.start()
                cancel_threads.append(thread)
        elif op == "fail_prepare":
            registry.get(DOMAINS[value % len(DOMAINS)]).fail_next_prepare += 1
        elif op == "fail_commit":
            registry.get(DOMAINS[value % len(DOMAINS)]).fail_next_commit += 1
        elif op == "fail_release":
            registry.get(DOMAINS[value % len(DOMAINS)]).fail_next_release += 1
    flush_installs()
    for thread in cancel_threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "cancel thread deadlocked"
    # A cancel that hit an injected release failure leaves its
    # reservation COMMITTED and its capacity held — that is the
    # *retryable* shape the invariant below accepts; what it rejects is
    # any PREPARED/half-unwound straggler or held-vs-committed skew.
    # --- The invariant ------------------------------------------------
    for driver in registry:
        committed = _committed_demand(driver)
        assert driver.held_mbps == pytest.approx(committed), (
            f"{driver.domain}: holds {driver.held_mbps} but commitments "
            f"sum to {committed}"
        )
        for reservation in driver.reservations():
            assert reservation.state is ReservationState.COMMITTED, (
                f"{driver.domain}: {reservation.slice_id} stranded in "
                f"{reservation.state.value}"
            )
        assert driver.held_mbps <= driver.capacity_mbps + 1e-9


@SLOW
@given(
    n_jobs=st.integers(min_value=2, max_value=12),
    mbps=st.floats(min_value=5.0, max_value=30.0),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_oversubscribed_batch_admits_exactly_what_fits(n_jobs, mbps, seed):
    """A burst larger than the pool: some jobs win, some lose, but the
    winners' demand never exceeds capacity and losers hold nothing."""
    capacity = mbps * max(1, n_jobs // 2)  # roughly half the burst fits
    registry = DriverRegistry(
        [
            MockDriver(domain=d, capacity_mbps=capacity, max_concurrent_installs=4)
            for d in DOMAINS
        ]
    )
    planner = BatchInstallPlanner(registry, max_workers=4)
    jobs = [
        InstallJob(
            slice_id=f"b{i}",
            attempts=[
                {d: DomainSpec(slice_id=f"b{i}", throughput_mbps=mbps) for d in DOMAINS}
            ],
        )
        for i in range(n_jobs)
    ]
    outcomes = planner.install(jobs)
    winners = {o.job.slice_id for o in outcomes if o.ok}
    for driver in registry:
        assert driver.held_mbps == pytest.approx(len(winners) * mbps)
        assert driver.held_mbps <= driver.capacity_mbps + 1e-9
        assert {r.slice_id for r in driver.reservations()} == winners
