"""Cross-module property-based invariants.

These tests drive whole subsystems with random operation sequences and
assert the system-level invariants DESIGN.md promises:

- resource conservation in every domain (nothing leaks, nothing
  overcommits physically),
- end-to-end allocations never violate the latency SLA,
- the orchestrator's ledger arithmetic is self-consistent,
- random orchestrator workloads leave every slice in a legal state.
"""

from __future__ import annotations

import os
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.admission import FcfsPolicy, GreedyPricePolicy, KnapsackPolicy
from repro.core.orchestrator import Orchestrator
from repro.core.overbooking import FixedOverbooking, NoOverbooking
from repro.core.slices import SliceState
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

#: The nightly CI flake-hunt multiplies every property suite's example
#: budget (HYPOTHESIS_EXAMPLE_MULTIPLIER=5) without touching the fast
#: per-push defaults.
EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

SLOW = settings(
    max_examples=15 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_requests=st.integers(min_value=1, max_value=15),
    factor=st.floats(min_value=1.0, max_value=3.0),
)
def test_orchestrator_never_overcommits_physical_resources(seed, n_requests, factor):
    """After any random workload, every domain's physical budget holds."""
    rng = np.random.default_rng(seed)
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=FixedOverbooking(factor) if factor > 1.001 else NoOverbooking(),
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    for i in range(n_requests):
        request = make_request(
            throughput_mbps=float(rng.uniform(2.0, 45.0)),
            max_latency_ms=float(rng.uniform(6.0, 100.0)),
            duration_s=float(rng.uniform(120.0, 2_000.0)),
            price=float(rng.uniform(1.0, 200.0)),
        )
        profile = ConstantProfile(
            request.sla.throughput_mbps, level=float(rng.uniform(0.1, 1.0))
        )
        orch.submit(request, profile)
        sim.run_until(sim.now + float(rng.uniform(0.0, 400.0)))
    # RAN: effective PRBs within budget on every cell.
    for enb in testbed.ran.enbs():
        enb.grid.check_invariants()
    # Transport: effective within capacity on every link.
    for link in testbed.transport.topology.links():
        assert link.effective_reserved_mbps <= link.capacity_mbps + 1e-6
    # Cloud: node capacities hold.
    for dc in testbed.cloud.datacenters():
        for node in dc.nodes():
            node.check_invariants()
    # Ledger arithmetic.
    ledger = orch.ledger
    assert ledger.net_revenue == pytest.approx(
        ledger.gross_revenue - ledger.total_penalties
    )
    assert ledger.admissions + ledger.rejections == n_requests
    # Every slice is in a legal, explainable state.
    for network_slice in orch.all_slices():
        assert network_slice.state in (
            SliceState.ACTIVE,
            SliceState.DEPLOYING,
            SliceState.EXPIRED,
            SliceState.REJECTED,
        )


@SLOW
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_active_allocations_respect_latency_sla(seed):
    rng = np.random.default_rng(seed)
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    for _ in range(8):
        request = make_request(
            throughput_mbps=float(rng.uniform(2.0, 30.0)),
            max_latency_ms=float(rng.uniform(6.0, 120.0)),
        )
        orch.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.5))
    sim.run_until(60.0)
    for network_slice in orch.active_slices():
        allocation = network_slice.allocation
        assert allocation is not None
        assert (
            allocation.total_latency_ms
            <= network_slice.request.sla.max_latency_ms + 1e-9
        )


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=12),
)
def test_expiry_returns_every_resource(seed, n):
    """Admit a batch, let everything expire: the testbed must be back to
    its pristine free state."""
    rng = np.random.default_rng(seed)
    testbed = build_testbed()
    pristine_prbs = dict(testbed.ran.free_prbs())
    pristine_vcpus = sum(dc.free_vcpus for dc in testbed.cloud.datacenters())
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    for _ in range(n):
        request = make_request(
            throughput_mbps=float(rng.uniform(2.0, 30.0)),
            duration_s=float(rng.uniform(60.0, 500.0)),
        )
        orch.submit(request, ConstantProfile(request.sla.throughput_mbps, level=0.4))
    sim.run_until(2_000.0)  # all durations elapsed
    assert testbed.ran.free_prbs() == pristine_prbs
    assert sum(dc.free_vcpus for dc in testbed.cloud.datacenters()) == pristine_vcpus
    for link in testbed.transport.topology.links():
        assert link.effective_reserved_mbps == pytest.approx(0.0)
    assert testbed.plmn_pool.available == testbed.plmn_pool.capacity


@settings(max_examples=20 * EXAMPLE_MULTIPLIER, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=20),
)
def test_batch_policies_agree_on_feasibility(seed, n):
    """Whatever the policy, an admitted batch must fit the capacity
    vector — checked across FCFS, greedy and knapsack on one instance."""
    from repro.core.admission import ResourceVector

    rng = np.random.default_rng(seed)
    candidates = [
        (
            make_request(price=float(rng.uniform(1, 100))),
            ResourceVector(
                prbs=float(rng.uniform(1, 50)),
                mbps=float(rng.uniform(1, 50)),
                vcpus=float(rng.integers(1, 8)),
            ),
        )
        for _ in range(n)
    ]
    capacity = ResourceVector(prbs=100.0, mbps=120.0, vcpus=24.0)
    for policy in (FcfsPolicy(), GreedyPricePolicy(), KnapsackPolicy(resolution=50)):
        decisions = policy.decide_batch(candidates, capacity)
        total = ResourceVector()
        for (request, demand), decision in zip(candidates, decisions):
            assert decision.request_id == request.request_id
            if decision.admitted:
                total = total + demand
        assert total.fits_within(capacity)
