"""Property-based invariants of the tenant → shard hash ring.

The ring is part of the cluster's *durable contract*: the router, the
standbys, and any future process must all place a tenant identically,
forever.  Three families of properties pin that down:

- **totality + determinism** — every tenant maps to exactly one valid
  shard, and two independently built rings (fresh processes) agree;
  placement is pure SHA-256, never ``hash()``, so ``PYTHONHASHSEED``
  cannot perturb it.
- **resize stability** — growing the ring from N to N+1 shards moves
  tenants *only to the new shard* (consistent hashing's defining
  property), and the moved fraction stays near the ideal 1/(N+1).
- **balance** — vnode smoothing keeps the per-shard load spread within
  a sane factor of ideal.
"""

from __future__ import annotations

import os
import subprocess
import sys

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import HashRing

EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

FAST = settings(
    max_examples=50 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

tenant_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=32,
)


class TestTotalityAndDeterminism:
    @FAST
    @given(tenant=tenant_ids, shards=st.integers(min_value=1, max_value=16))
    def test_every_tenant_maps_to_exactly_one_valid_shard(self, tenant, shards):
        ring = HashRing(shards)
        shard = ring.shard_for(tenant)
        assert 0 <= shard < shards
        # Repeated lookups are stable.
        assert ring.shard_for(tenant) == shard

    @FAST
    @given(tenant=tenant_ids, shards=st.integers(min_value=1, max_value=16))
    def test_two_independent_rings_agree(self, tenant, shards):
        assert HashRing(shards).shard_for(tenant) == HashRing(
            shards
        ).shard_for(tenant)

    def test_placement_is_identical_across_processes(self):
        """The cross-*process* half of determinism: a subprocess with a
        different ``PYTHONHASHSEED`` places the same tenants on the
        same shards (the ring hashes with SHA-256, not ``hash()``)."""
        tenants = [f"tenant-{i}" for i in range(64)] + ["", "Δ-tenant", "a b"]
        local = HashRing(5)
        expected = [local.shard_for(t) for t in tenants]
        script = (
            "import json,sys\n"
            "from repro.cluster import HashRing\n"
            "ring = HashRing(5)\n"
            "tenants = json.loads(sys.argv[1])\n"
            "print(json.dumps([ring.shard_for(t) for t in tenants]))\n"
        )
        import json

        env = dict(os.environ, PYTHONHASHSEED="12345")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        output = subprocess.run(
            [sys.executable, "-c", script, json.dumps(tenants)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert json.loads(output) == expected


class TestResizeStability:
    @FAST
    @given(shards=st.integers(min_value=1, max_value=12))
    def test_growth_moves_tenants_only_to_the_new_shard(self, shards):
        before = HashRing(shards)
        after = HashRing(shards + 1)
        for i in range(200):
            tenant = f"tenant-{i}"
            old, new = before.shard_for(tenant), after.shard_for(tenant)
            # Consistent hashing: a tenant either stays put or lands on
            # the shard that just joined — never shuffles between
            # pre-existing shards.
            assert new == old or new == shards, (tenant, old, new)

    def test_moved_fraction_is_near_the_ring_ideal(self):
        """Growing N → N+1 should move ≈ 1/(N+1) of tenants; allow 2x
        slack for vnode placement variance."""
        population = [f"tenant-{i}" for i in range(2000)]
        for shards in (2, 4, 8):
            before = HashRing(shards)
            after = HashRing(shards + 1)
            moved = sum(
                1
                for t in population
                if before.shard_for(t) != after.shard_for(t)
            )
            ideal = len(population) / (shards + 1)
            assert moved <= 2.0 * ideal, (shards, moved, ideal)
            assert moved > 0  # the new shard actually takes load


class TestBalance:
    def test_vnodes_spread_load_within_sane_bounds(self):
        ring = HashRing(4, vnodes=64)
        counts = ring.spread(f"tenant-{i}" for i in range(4000))
        assert set(counts) == {0, 1, 2, 3}
        ideal = 4000 / 4
        for shard, count in counts.items():
            assert 0.4 * ideal <= count <= 1.8 * ideal, (shard, count)
