"""Property-based determinism of the scenario engine.

The contract the D13 gate and the nightly soak both lean on: a
:class:`~repro.scenarios.spec.ScenarioSpec` plus its seed is a *complete*
description of a run.  Same spec + same seed ⇒ identical event timeline
and identical :class:`~repro.scenarios.report.ScenarioReport` digest,
across repeated runs on fresh testbeds.  Randomized small specs
(hypothesis) cover tenant mixes, mobility models, and failure windows no
hand-picked pack would.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scenarios import ScenarioSpec, run_scenario

EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

#: Scenario runs spin a full testbed + orchestrator per example, so the
#: example budget is deliberately small; the nightly multiplier widens it.
SLOW = settings(
    max_examples=8 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Horizon kept short (sim-time) so each example stays sub-second.
HORIZON_S = 1_800.0
EPOCH_S = 60.0

tenant = st.builds(
    lambda idx, base, span: {
        "tenant_id": f"t{idx}",
        "base_mbps_per_user": base,
        "min_mbps": 2.0,
        "max_mbps": 2.0 + span,
    },
    idx=st.integers(min_value=0, max_value=2),
    base=st.floats(min_value=0.1, max_value=0.6, allow_nan=False),
    span=st.floats(min_value=4.0, max_value=16.0, allow_nan=False),
)

failure = st.builds(
    lambda target, start_frac, dur: {
        "kind": "link",
        "target": target,
        "start_s": round(start_frac * HORIZON_S, 1),
        "duration_s": dur,
    },
    target=st.sampled_from(["enb1-mmwave", "enb2-uwave"]),
    start_frac=st.floats(min_value=0.1, max_value=0.6, allow_nan=False),
    dur=st.sampled_from([120.0, 300.0]),
)

spec_payload = st.builds(
    lambda seed, tenants, model, users, failures: {
        "name": "prop-determinism",
        "seed": seed,
        "horizon_s": HORIZON_S,
        "epoch_s": EPOCH_S,
        "n_enbs": 2,
        "tenants": tenants,
        "mobility": {"model": model, "n_users": users},
        "failures": failures,
    },
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    tenants=st.lists(tenant, min_size=1, max_size=2, unique_by=lambda t: t["tenant_id"]),
    model=st.sampled_from(["commuter-tides", "vehicular-corridor"]),
    users=st.integers(min_value=2, max_value=12),
    failures=st.lists(failure, min_size=0, max_size=2),
)


class TestScenarioDeterminism:
    @SLOW
    @given(spec_payload)
    def test_same_spec_same_seed_same_digest(self, payload):
        spec = ScenarioSpec.from_dict(payload)
        first = run_scenario(spec)
        second = run_scenario(ScenarioSpec.from_dict(payload))
        assert first.timeline == second.timeline
        assert first.digest == second.digest
        assert first.deterministic_dict() == second.deterministic_dict()

    @SLOW
    @given(spec_payload, st.integers(min_value=1, max_value=1_000))
    def test_different_seed_different_stream(self, payload, bump):
        """The seed must actually steer the run: reports at different
        seeds may legitimately coincide on sparse scenarios, but the
        spec JSON embedded in the digest input differs, so the digest
        must change."""
        spec_a = ScenarioSpec.from_dict(payload)
        payload_b = dict(payload, seed=(payload["seed"] + bump) % 2**31)
        spec_b = ScenarioSpec.from_dict(payload_b)
        assert run_scenario(spec_a).digest != run_scenario(spec_b).digest
