"""Property-based invariants of the durable store's replay fold.

Two pillars of crash recovery:

1. **Replay determinism** — folding the same journal (or the same
   snapshot + tail) twice yields byte-identical state digests; the
   fold is a pure function of its inputs.  Randomized record sequences
   (hypothesis) cover orderings no hand-written test would.
2. **Conservation across recovery** — after a crash + restore against
   a real testbed, ``held == Σ demand of COMMITTED reservations``
   still holds exactly in the chaos domain, and every domain holds
   exactly the adopted slices (the concurrent-install invariant of
   ``test_concurrency_invariants`` survives the restart).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.drivers.base import ReservationState
from repro.store import RecoveryManager
from repro.store.codec import ReplayState, request_to_dict
from repro.store.journal import JournalRecord
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.store.conftest import (  # noqa: F401 - fixture import
    durable_testbed,
    make_orchestrator,
    reopen_store,
)

EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

SLOW = settings(
    max_examples=25 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _request_payload(index: int) -> dict:
    return request_to_dict(
        SliceRequest(
            tenant_id=f"tenant-{index % 3}",
            service_type=ServiceType.EMBB,
            sla=SLA(throughput_mbps=5.0 + index, max_latency_ms=50.0, duration_s=600.0),
            price=100.0,
            penalty_rate=1.0,
            request_id=f"req-{index:06d}",
        )
    )


#: One randomized journal step: (record_type template, subject index).
step = st.tuples(
    st.sampled_from(
        [
            "admission.enqueued",
            "install.started",
            "slice.installed",
            "slice.activated",
            "slice.expired",
            "slice.cancelled",
            "slice.rejected",
            "slice.modified",
            "slice.reconfigured",
            "booking.committed",
            "booking.cancelled",
            "quota.set",
            "event.emitted",
            "clock.tick",
        ]
    ),
    st.integers(min_value=0, max_value=7),
)


def _materialize(steps) -> list:
    """Turn randomized (type, index) steps into valid journal records."""
    records = []
    for lsn, (kind, index) in enumerate(steps, start=1):
        slice_id = f"slice-{index:06d}"
        request_id = f"req-{index:06d}"
        if kind in ("admission.enqueued", "install.started", "slice.installed"):
            data = {"request": _request_payload(index), "slice_id": slice_id}
            if kind == "slice.installed":
                data.update(
                    plmn="00101",
                    fraction=0.8,
                    window=[float(lsn), float(lsn) + 600.0],
                    reservations={"mock": f"mock-res-{index:06d}"},
                )
        elif kind == "booking.committed":
            data = {"request": _request_payload(index), "start_time": float(lsn + 100)}
        elif kind == "booking.cancelled":
            data = {"request_id": request_id}
        elif kind == "slice.rejected":
            data = {"request_id": request_id, "slice_id": slice_id, "reason": "x"}
        elif kind == "slice.modified":
            data = {"slice_id": slice_id, "throughput_mbps": 9.0 + index}
        elif kind == "slice.reconfigured":
            data = {"slice_id": slice_id, "fraction": 0.5}
        elif kind == "quota.set":
            data = {"tenant_id": f"tenant-{index % 3}", "max_active_slices": index}
        elif kind == "event.emitted":
            data = {"event": {"seq": lsn, "type": "x", "tenant_id": None}}
        elif kind == "clock.tick":
            data = {"epoch": lsn}
        else:
            data = {"slice_id": slice_id}
        records.append(
            JournalRecord(lsn=lsn, time=float(lsn), record_type=kind, data=data)
        )
    return records


class TestFoldDeterminism:
    @SLOW
    @given(st.lists(step, min_size=0, max_size=60))
    def test_same_journal_same_digest(self, steps):
        records = _materialize(steps)
        first = ReplayState.restore(None, records)
        second = ReplayState.restore(None, records)
        assert first.digest() == second.digest()

    @SLOW
    @given(st.lists(step, min_size=1, max_size=60), st.integers(min_value=0, max_value=59))
    def test_snapshot_plus_tail_equals_full_fold(self, steps, cut_at):
        """Checkpointing at any point must not change the folded state:
        fold-prefix → snapshot → fold-tail == fold-everything."""
        records = _materialize(steps)
        cut = min(cut_at, len(records))
        prefix_state = ReplayState.restore(None, records[:cut])
        via_snapshot = ReplayState.restore(prefix_state.to_dict(), records[cut:])
        full = ReplayState.restore(None, records)
        assert via_snapshot.digest() == full.digest()

    @SLOW
    @given(st.lists(step, min_size=0, max_size=40))
    def test_snapshot_round_trip_is_lossless(self, steps):
        state = ReplayState.restore(None, _materialize(steps))
        assert ReplayState.from_dict(state.to_dict()).digest() == state.digest()


class TestRecoveryConservation:
    def test_held_equals_sum_committed_after_recovery(
        self, durable_testbed, tmp_path
    ):
        """The concurrency suite's conservation invariant, post-restore:
        physically held capacity == Σ demand of COMMITTED reservations,
        and two restores of the same journal agree on the state digest."""
        directory = str(tmp_path / "store")
        firewall = durable_testbed.registry.get("firewall")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        decisions = first.install_admitted_batch(
            [
                (make_request(throughput_mbps=4.0 + i), ConstantProfile(4.0 + i))
                for i in range(6)
            ]
        )
        assert all(d.admitted for d in decisions)
        # Churn: one cancelled (its resources must NOT survive recovery).
        cancelled = decisions[0].slice_id
        first.cancel(cancelled, refund=False)
        # Digest of the journal as-of the crash, folded twice.
        digest_a = first.store.replay().digest()
        digest_b = first.store.replay().digest()
        assert digest_a == digest_b
        first.store.close()

        restarted = make_orchestrator(durable_testbed, store=reopen_store(directory))
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 5
        live_ids = {s.slice_id for s in restarted.live_slices()}
        assert cancelled not in live_ids
        committed = sum(
            r.spec.throughput_mbps * r.spec.effective_fraction
            for r in firewall.list_reservations()
            if r.state is ReservationState.COMMITTED
        )
        assert firewall.held_mbps == pytest.approx(committed)
        assert {r.slice_id for r in firewall.list_reservations()} == live_ids
