"""Property-based invariants for the batch broker and advance bookings."""

from __future__ import annotations

import os
import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.admission import FcfsPolicy, KnapsackPolicy
from repro.core.broker import SliceBroker
from repro.core.orchestrator import Orchestrator
from repro.core.slices import SliceState
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

#: The nightly CI flake-hunt multiplies every property suite's example
#: budget (HYPOTHESIS_EXAMPLE_MULTIPLIER=5) without touching the fast
#: per-push defaults.
EXAMPLE_MULTIPLIER = int(os.environ.get("HYPOTHESIS_EXAMPLE_MULTIPLIER", "1"))

SLOW = settings(
    max_examples=12 * EXAMPLE_MULTIPLIER,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_requests=st.integers(min_value=1, max_value=12),
    window_s=st.floats(min_value=10.0, max_value=600.0),
    use_knapsack=st.booleans(),
)
def test_broker_never_overcommits_and_accounts_everything(
    seed, n_requests, window_s, use_knapsack
):
    rng = np.random.default_rng(seed)
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    broker = SliceBroker(
        orch,
        window_s=window_s,
        policy=KnapsackPolicy() if use_knapsack else FcfsPolicy(),
    )
    for _ in range(n_requests):
        request = make_request(
            throughput_mbps=float(rng.uniform(2.0, 45.0)),
            duration_s=float(rng.uniform(300.0, 3_000.0)),
            price=float(rng.uniform(1.0, 200.0)),
        )
        broker.submit(
            request,
            ConstantProfile(request.sla.throughput_mbps, level=float(rng.uniform(0.2, 0.9))),
        )
    sim.run_until(window_s + 60.0)
    # Every queued request got exactly one decision.
    assert len(broker.decisions) == n_requests
    ledger = orch.ledger
    assert ledger.admissions + ledger.rejections == n_requests
    # Physical budgets hold everywhere.
    for enb in testbed.ran.enbs():
        enb.grid.check_invariants()
    for link in testbed.transport.topology.links():
        assert link.effective_reserved_mbps <= link.capacity_mbps + 1e-6
    for dc in testbed.cloud.datacenters():
        for node in dc.nodes():
            node.check_invariants()
    # No slice stuck in a transient state after the window settled.
    for network_slice in orch.all_slices():
        assert network_slice.state in (
            SliceState.ACTIVE,
            SliceState.DEPLOYING,
            SliceState.EXPIRED,
            SliceState.REJECTED,
        )


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_bookings=st.integers(min_value=1, max_value=8),
)
def test_advance_bookings_never_exceed_calendar_capacity(seed, n_bookings):
    """Whatever mix of accepted advance bookings, the calendar's peak
    committed usage never exceeds its capacity vector."""
    rng = np.random.default_rng(seed)
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    latest_end = 0.0
    for _ in range(n_bookings):
        start = float(rng.uniform(100.0, 5_000.0))
        request = make_request(
            throughput_mbps=float(rng.uniform(5.0, 45.0)),
            duration_s=float(rng.uniform(300.0, 5_000.0)),
        )
        orch.submit_advance(
            request,
            ConstantProfile(request.sla.throughput_mbps, level=0.5),
            start_time=start,
        )
        latest_end = max(latest_end, start + request.sla.duration_s)
    peak = orch.calendar.peak_usage(0.0, latest_end + 10.0)
    assert peak.fits_within(orch.calendar.capacity)
