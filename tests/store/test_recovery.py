"""Recovery edge cases: empty journal, snapshot-only restores, corrupt
tails, advance bookings spanning the crash, quota restoration, and the
durable event-feed continuity across a restart."""

from __future__ import annotations

from repro.api.service import SliceService
from repro.core.slices import SliceState
from repro.store import RecoveryManager
from repro.store.codec import request_to_dict
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.store.conftest import make_orchestrator, reopen_store


def crash(orchestrator):
    """Simulate the process dying: the store stops accepting writes;
    the southbound (drivers/controllers) lives on."""
    orchestrator.store.close()


class TestEdgeCases:
    def test_empty_journal_restores_nothing(self, durable_testbed, tmp_path):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 0
        assert report.slices_lost == 0
        assert report.admissions_requeued == 0
        assert restarted.live_slices() == []

    def test_snapshot_only_restore(self, durable_testbed, tmp_path):
        """All state in the snapshot, empty journal tail."""
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        decision = first.submit(
            make_request(throughput_mbps=10.0), ConstantProfile(10.0)
        )
        assert decision.admitted
        first.sim.run_until(10.0)  # ACTIVE
        first.checkpoint()
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 1
        adopted = restarted.slice(decision.slice_id)
        assert adopted.state is SliceState.ACTIVE
        assert adopted.plmn is not None

    def test_corrupt_truncated_tail_is_ignored(self, durable_testbed, tmp_path):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        decision = first.submit(
            make_request(throughput_mbps=10.0), ConstantProfile(10.0)
        )
        assert decision.admitted
        crash(first)
        # The process died mid-append: a torn half-record at the tail.
        with open(directory + "/journal.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 99999, "t": 1.0, "type": "slice.ins')
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 1
        assert restarted.slice(decision.slice_id).state in (
            SliceState.DEPLOYING, SliceState.ADMITTED
        )

    def test_advance_booking_spanning_the_crash(self, durable_testbed, tmp_path):
        """A promised future slice survives the restart: its calendar
        window is rebased and its install still fires."""
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        request = make_request(throughput_mbps=8.0, duration_s=600.0)
        decision = first.submit_advance(
            request, ConstantProfile(8.0), start_time=500.0
        )
        assert decision.admitted
        first.sim.run_until(100.0)  # crash well before the start time
        crash(first)

        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        restarted.start()
        report = RecoveryManager(restarted).restore()
        assert report.bookings_restored == 1
        booking = restarted.calendar.get(request.request_id)
        assert booking is not None
        # 500 s start; the newest durable heartbeat before the t=100
        # crash is the t=60 monitoring epoch → 440 s out on the new
        # clock (crash-time precision is bounded by the epoch).
        assert booking.start == 440.0
        restarted.sim.run_until(450.0)
        from repro.core.slices import slice_id_for

        network_slice = restarted.slice(slice_id_for(request.request_id))
        assert network_slice.state in (SliceState.DEPLOYING, SliceState.ACTIVE)

    def test_booking_whose_start_passed_is_promoted(
        self, durable_testbed, tmp_path
    ):
        """A booking whose start time elapsed during the outage goes
        straight into the admission queue."""
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        request = make_request(throughput_mbps=8.0)
        first.store.append(
            "booking.committed",
            time=50.0,
            request=request_to_dict(request),
            start_time=20.0,  # already in the past at crash time 50
        )
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.bookings_promoted == 1
        assert restarted.pending_installs == 1

    def test_queued_admissions_are_reenqueued(self, durable_testbed, tmp_path):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        request = make_request(throughput_mbps=6.0)
        first.enqueue_admitted(request, ConstantProfile(6.0))
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        restarted.start()
        report = RecoveryManager(restarted).restore()
        assert report.admissions_requeued == 1
        assert restarted.pending_installs == 1
        # The next monitoring epoch installs it.
        restarted.sim.run_until(61.0)
        assert restarted.pending_installs == 0
        assert len(restarted.live_slices()) == 1

    def test_terminal_slices_stay_terminal(self, durable_testbed, tmp_path):
        """Expired/cancelled slices must not be resurrected."""
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        short = make_request(throughput_mbps=5.0, duration_s=30.0)
        decision = first.submit(short, ConstantProfile(5.0))
        assert decision.admitted
        first.sim.run_until(120.0)  # activated and expired
        assert first.slice(decision.slice_id).state is SliceState.EXPIRED
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 0
        assert restarted.live_slices() == []


class TestServiceRecovery:
    def test_quotas_survive_the_restart(self, durable_testbed, tmp_path):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        service = SliceService(first)
        service.set_quota("tenant-a", max_active_slices=3, max_aggregate_mbps=50.0)
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        fresh_service = SliceService(restarted)
        report = RecoveryManager(restarted, service=fresh_service).restore()
        assert report.quotas_restored == 1
        quota = fresh_service.quota_for("tenant-a")
        assert quota.max_active_slices == 3
        assert quota.max_aggregate_mbps == 50.0

    def test_quotas_survive_serviceless_recovery_and_second_restart(
        self, durable_testbed, tmp_path
    ):
        """A restore run before any service exists must not let the
        final checkpoint compact the quotas away: the orchestrator
        carries them, a later service seeds from them, and a *second*
        (snapshot-only) restart still sees them."""
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        SliceService(first).set_quota("tenant-b", max_aggregate_mbps=25.0)
        crash(first)

        # Restore with NO service attached (checkpoint runs at the end).
        second = make_orchestrator(durable_testbed, store=reopen_store(directory))
        report = RecoveryManager(second).restore()
        assert report.quotas_restored == 1
        late_service = SliceService(second)  # constructed after recovery
        assert late_service.quota_for("tenant-b").max_aggregate_mbps == 25.0
        crash(second)

        # Second restart replays the recovery checkpoint's snapshot.
        third = make_orchestrator(durable_testbed, store=reopen_store(directory))
        third_service = SliceService(third)
        report = RecoveryManager(third, service=third_service).restore()
        assert report.quotas_restored == 1
        assert third_service.quota_for("tenant-b").max_aggregate_mbps == 25.0

    def test_event_seq_continues_across_restart(self, durable_testbed, tmp_path):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        assert first.submit(
            make_request(throughput_mbps=5.0), ConstantProfile(5.0)
        ).admitted
        pre_crash_seq = first.events.last_seq
        assert pre_crash_seq > 0
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        RecoveryManager(restarted).restore()
        # Every event emitted during and after recovery — including the
        # slice.adopted events reconciliation itself produces — numbers
        # strictly after the pre-crash feed, so a consumer's `since`
        # cursor never goes backwards and seqs are never reused.
        recovery_events = restarted.events.since(0)
        assert recovery_events, "recovery must emit events"
        assert all(e.seq > pre_crash_seq for e in recovery_events)
        assert any(e.event_type == "slice.adopted" for e in recovery_events)
        post = restarted.events.emit(restarted.sim.now, "test.event")
        assert post.seq > pre_crash_seq

    def test_recovery_checkpoints_to_a_compact_journal(
        self, durable_testbed, tmp_path
    ):
        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        for mbps in (5.0, 6.0):
            assert first.submit(
                make_request(throughput_mbps=mbps), ConstantProfile(mbps)
            ).admitted
        crash(first)
        store = reopen_store(directory)
        restarted = make_orchestrator(durable_testbed, store=store)
        RecoveryManager(restarted).restore()
        # Recovery ends with a checkpoint: the journal is compact and a
        # *second* restart replays from the snapshot plus only the
        # post-recovery tail (checkpoint marker, recovery.completed
        # event + audit record).
        assert store.snapshot_lsn > 0
        assert store.records_since_checkpoint <= 3


class TestRequestIdContinuity:
    def test_terminated_slices_still_advance_the_request_counter(
        self, durable_testbed, tmp_path
    ):
        """Slices that expired before the crash vanish from the live
        image, but their ids must never be re-issued after a restart."""
        from repro.core.slices import peek_request_counter

        directory = str(tmp_path / "store")
        first = make_orchestrator(durable_testbed, directory=directory)
        first.start()
        short = make_request(throughput_mbps=5.0, duration_s=30.0)
        decision = first.submit(short, ConstantProfile(5.0))
        assert decision.admitted
        first.sim.run_until(120.0)  # activated and expired
        crash(first)
        restarted = make_orchestrator(
            durable_testbed, store=reopen_store(directory)
        )
        report = RecoveryManager(restarted).restore()
        assert report.slices_adopted == 0  # nothing lives — and yet:
        ordinal = int(short.request_id.rsplit("-", 1)[1])
        assert peek_request_counter() > ordinal
