"""Crash-recovery chaos: kill the control plane mid-16-job-batch.

The scenario the acceptance criteria pin down:

1. a first wave of slices installs and is acknowledged (journaled),
2. a 16-job concurrent batch launches with a chaos domain stalling a
   few southbound commits mid-flight,
3. the orchestrator "dies" (its store stops accepting writes — the
   exact semantics of a SIGKILL'd process whose buffered acks never
   land) while those commits are parked,
4. the southbound keeps running and finishes the in-flight work, like
   real controllers would,
5. a fresh control plane restores from snapshot+journal and reconciles.

Invariants verified after recovery:

- **zero lost COMMITTED slices** — every slice the southbound holds
  fully committed is re-adopted (acked *and* never-acked ones),
- **zero leaked reservations** — driver state contains exactly the
  adopted slices; injected orphans are compensated,
- **advance bookings intact** — the promised window survives, rebased,
- the journaled-but-uninstalled admission is back in the queue,
- ``held == Σ COMMITTED`` exactly, per domain.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.slices import SliceState
from repro.drivers.base import DomainSpec, ReservationState
from repro.store import RecoveryManager
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.store.conftest import make_orchestrator, reopen_store

MBPS = 5.0
FIRST_WAVE = 8
BATCH = 16
STALLED = 4


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def _committed_demand(driver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.list_reservations()
        if r.state is ReservationState.COMMITTED
    )


def test_kill_mid_batch_recovers_without_losing_slices(
    durable_testbed, tmp_path
):
    directory = str(tmp_path / "store")
    firewall = durable_testbed.registry.get("firewall")
    first = make_orchestrator(durable_testbed, directory=directory)
    first.start()

    # --- 1. acknowledged churn -------------------------------------------
    wave = [
        (make_request(throughput_mbps=MBPS), ConstantProfile(MBPS))
        for _ in range(FIRST_WAVE)
    ]
    decisions = first.install_admitted_batch(wave)
    assert all(d.admitted for d in decisions)
    acked_ids = {d.slice_id for d in decisions}

    # A promise for the future + a journaled admission still queued.
    booking_request = make_request(throughput_mbps=MBPS, duration_s=600.0)
    assert first.submit_advance(
        booking_request, ConstantProfile(MBPS), start_time=1_000.0
    ).admitted
    queued_request = make_request(throughput_mbps=MBPS)
    first.enqueue_admitted(queued_request, ConstantProfile(MBPS))

    # --- 2. the 16-job batch, 4 commits stalled mid-flight ---------------
    batch = [
        (make_request(throughput_mbps=MBPS), ConstantProfile(MBPS))
        for _ in range(BATCH)
    ]
    firewall.stall(STALLED, kinds=("commit",))
    batch_decisions = []

    def run_batch() -> None:
        batch_decisions.extend(first.install_admitted_batch(batch))

    worker = threading.Thread(target=run_batch, daemon=True)
    worker.start()
    assert _wait_until(lambda: firewall.stalled_ops >= STALLED), (
        f"only {firewall.stalled_ops}/{STALLED} commits reached the stall gate"
    )

    # --- 3. SIGKILL the control plane ------------------------------------
    pre_crash_lsn = first.store.last_lsn
    first.store.close()  # writes from the dead process never land
    assert pre_crash_lsn > 0

    # --- 4. the southbound finishes what was in flight --------------------
    firewall.release_stall()
    worker.join(timeout=30.0)
    assert not worker.is_alive()
    assert all(d.admitted for d in batch_decisions)  # southbound truth

    # Orphans: residue of installs that died before any journal record
    # (crash between prepare/commit and the WAL append).
    orphan_prepared = firewall.prepare(
        DomainSpec(slice_id="slice-orphan-prepared", throughput_mbps=7.0)
    )
    orphan_committed = firewall.prepare(
        DomainSpec(slice_id="slice-orphan-committed", throughput_mbps=9.0)
    )
    firewall.commit(orphan_committed)
    assert orphan_prepared.state is ReservationState.PREPARED

    # --- 5. restore a fresh control plane ---------------------------------
    restarted = make_orchestrator(durable_testbed, store=reopen_store(directory))
    restarted.start()
    report = RecoveryManager(restarted).restore()

    # Zero lost COMMITTED slices: the acked first wave AND the whole
    # mid-flight batch (southbound committed it all) are adopted.
    assert report.slices_lost == 0, report.lost_slice_ids
    assert report.slices_adopted == FIRST_WAVE + BATCH
    live_ids = {s.slice_id for s in restarted.live_slices()}
    assert acked_ids <= live_ids
    assert len(live_ids) == FIRST_WAVE + BATCH

    # Zero leaked reservations: every domain holds exactly the adopted
    # slices, all COMMITTED; the injected orphans were compensated.
    assert report.orphans_compensated == 2
    for driver in durable_testbed.registry.drivers():
        reservations = driver.list_reservations()
        assert {r.slice_id for r in reservations} == live_ids, driver.domain
        assert all(
            r.state is ReservationState.COMMITTED for r in reservations
        ), driver.domain

    # held == Σ COMMITTED, exactly, on the chaos domain.
    assert firewall.held_mbps == pytest.approx((FIRST_WAVE + BATCH) * MBPS)
    assert firewall.held_mbps == pytest.approx(_committed_demand(firewall))

    # Advance booking intact (window rebased onto the new clock).
    booking = restarted.calendar.get(booking_request.request_id)
    assert booking is not None
    assert booking.end - booking.start == pytest.approx(
        600.0 + restarted.config.deploy_time_s
    )

    # The journaled-but-uninstalled admission is queued again.
    assert restarted.pending_installs == 1

    # And the recovered control plane actually *runs*: slices activate,
    # the queued admission installs on the next epoch.
    restarted.sim.run_until(restarted.config.monitoring_epoch_s + 5.0)
    states = {s.state for s in restarted.live_slices()}
    assert states <= {SliceState.ACTIVE, SliceState.DEPLOYING}
    assert restarted.pending_installs == 0
    assert len(restarted.live_slices()) == FIRST_WAVE + BATCH + 1


def test_double_crash_restores_from_snapshot(durable_testbed, tmp_path):
    """Recovery checkpoints; a second crash replays snapshot + the tiny
    post-recovery tail and converges to the same state."""
    directory = str(tmp_path / "store")
    first = make_orchestrator(durable_testbed, directory=directory)
    first.start()
    decisions = first.install_admitted_batch(
        [
            (make_request(throughput_mbps=MBPS), ConstantProfile(MBPS))
            for _ in range(4)
        ]
    )
    assert all(d.admitted for d in decisions)
    first.store.close()

    second = make_orchestrator(durable_testbed, store=reopen_store(directory))
    second.start()
    first_report = RecoveryManager(second).restore()
    assert first_report.slices_adopted == 4
    second.store.close()

    third = make_orchestrator(durable_testbed, store=reopen_store(directory))
    third.start()
    second_report = RecoveryManager(third).restore()
    assert second_report.slices_adopted == 4
    assert second_report.slices_lost == 0
    # The second restore came from the recovery checkpoint's snapshot.
    assert second_report.snapshot_lsn > 0
    assert {s.slice_id for s in third.live_slices()} == {
        d.slice_id for d in decisions
    }
