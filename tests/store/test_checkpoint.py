"""Snapshot/checkpoint behavior of the control-plane store: atomic
writes, corrupt-latest fallback, journal compaction, auto-checkpoint
wiring and the durable event cursor."""

from __future__ import annotations

import pytest

from repro.store.codec import ReplayState
from repro.store.snapshot import SnapshotStore
from repro.store.store import ControlPlaneStore, NullStore, StoreError, open_store

from tests.conftest import make_request
from tests.store.conftest import make_orchestrator
from repro.traffic.patterns import ConstantProfile


class TestSnapshotStore:
    def test_write_then_load_round_trip(self, tmp_path):
        snapshots = SnapshotStore(str(tmp_path))
        snapshots.write({"time": 5.0, "live": {}}, lsn=42)
        state, lsn = snapshots.load_latest()
        assert lsn == 42
        assert state["time"] == 5.0

    def test_latest_wins_and_old_snapshots_pruned(self, tmp_path):
        snapshots = SnapshotStore(str(tmp_path))
        for lsn in (10, 20, 30):
            snapshots.write({"lsn_marker": lsn}, lsn=lsn)
        state, lsn = snapshots.load_latest()
        assert lsn == 30
        # Latest + one fallback are retained, older pruned.
        assert snapshots.list_lsns() == [20, 30]

    def test_corrupt_latest_falls_back_to_predecessor(self, tmp_path):
        snapshots = SnapshotStore(str(tmp_path))
        snapshots.write({"generation": 1}, lsn=10)
        path = snapshots.write({"generation": 2}, lsn=20)
        with open(path, "w") as handle:
            handle.write("{ torn checkpoi")
        state, lsn = snapshots.load_latest()
        assert (state["generation"], lsn) == (1, 10)

    def test_no_snapshot_returns_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).load_latest() is None


class TestControlPlaneStore:
    def test_checkpoint_compacts_journal(self, tmp_path):
        store = ControlPlaneStore(str(tmp_path))
        for i in range(20):
            store.append(f"t.{i}", time=float(i))
        assert store.records_since_checkpoint == 20
        lsn = store.checkpoint({"time": 19.0})
        assert lsn == 20
        assert store.snapshot_lsn == 20
        # Only the post-checkpoint audit marker remains in the journal.
        assert [r.record_type for r in store.records()] == ["checkpoint.written"]
        snapshot, tail = store.load()
        assert snapshot["time"] == 19.0
        assert [r.record_type for r in tail] == ["checkpoint.written"]

    def test_should_checkpoint_threshold(self, tmp_path):
        store = ControlPlaneStore(str(tmp_path), checkpoint_every=5)
        for i in range(4):
            store.append("t")
        assert not store.should_checkpoint()
        store.append("t")
        assert store.should_checkpoint()
        store.checkpoint({"time": 0.0})
        assert not store.should_checkpoint()

    def test_events_after_filters_and_limits(self, tmp_path):
        store = ControlPlaneStore(str(tmp_path))
        for seq in range(1, 6):
            store.append("event.emitted", time=0.0, event={"seq": seq, "type": "x"})
            store.append("slice.activated", time=0.0, slice_id=f"s{seq}")
        pairs = store.events_after(0)
        assert len(pairs) == 5
        assert all(event["type"] == "x" for _, event in pairs)
        limited = store.events_after(pairs[1][0], limit=2)
        assert [event["seq"] for _, event in limited] == [3, 4]

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(None), NullStore)
        assert isinstance(open_store(str(tmp_path / "d")), ControlPlaneStore)

    def test_null_store_is_inert(self):
        store = NullStore()
        assert store.append("anything") == 0
        assert store.records() == []
        assert store.load() == (None, [])
        assert not store.should_checkpoint()
        assert store.status() == {"enabled": False}
        with pytest.raises(StoreError):
            store.checkpoint({})


class TestOrchestratorCheckpoint:
    def test_manual_checkpoint_round_trips_live_state(
        self, durable_testbed, tmp_path
    ):
        orch = make_orchestrator(durable_testbed, directory=str(tmp_path / "store"))
        orch.start()
        decision = orch.submit(make_request(throughput_mbps=10.0), ConstantProfile(10.0))
        assert decision.admitted
        orch.sim.run_until(10.0)  # activate
        result = orch.checkpoint()
        assert result["checkpoint_lsn"] > 0
        snapshot, tail = orch.store.load()
        state = ReplayState.restore(snapshot, tail)
        assert decision.slice_id in state.live
        assert state.live[decision.slice_id]["status"] == "active"

    def test_auto_checkpoint_from_monitoring_loop(self, durable_testbed, tmp_path):
        orch = make_orchestrator(
            durable_testbed,
            directory=str(tmp_path / "store"),
            checkpoint_every_records=5,
        )
        orch.start()
        for _ in range(3):
            assert orch.submit(
                make_request(throughput_mbps=5.0), ConstantProfile(5.0)
            ).admitted
        assert orch.store.should_checkpoint()
        orch.sim.run_until(61.0)  # one monitoring epoch
        assert orch.store.snapshot_lsn > 0
        assert not orch.store.should_checkpoint()

    def test_checkpoint_requires_durability(self, durable_testbed):
        from repro.core.orchestrator import OrchestratorError

        orch = make_orchestrator(durable_testbed)  # NullStore
        with pytest.raises(OrchestratorError):
            orch.checkpoint()
