"""Unit tests of the write-ahead journal: LSN discipline, durability,
crash tolerance of the read path, and compaction."""

from __future__ import annotations

import json
import os

import pytest

from repro.store.journal import Journal, JournalCorrupt, JournalError


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "journal.jsonl")


class TestAppend:
    def test_lsns_monotonic_from_one(self, path):
        journal = Journal(path)
        assert journal.last_lsn == 0
        assert [journal.append(f"t.{i}") for i in range(5)] == [1, 2, 3, 4, 5]
        assert journal.last_lsn == 5

    def test_records_round_trip_payload(self, path):
        journal = Journal(path)
        journal.append("slice.installed", time=12.5, slice_id="s1", n=3)
        (record,) = journal.records()
        assert record.lsn == 1
        assert record.time == 12.5
        assert record.record_type == "slice.installed"
        assert record.data == {"slice_id": "s1", "n": 3}

    def test_numpy_payloads_are_coerced(self, path):
        import numpy as np

        journal = Journal(path)
        journal.append("t", value=np.float64(1.5), count=np.int64(3))
        (record,) = journal.records()
        assert record.data == {"value": 1.5, "count": 3}

    def test_append_visible_on_disk_without_close(self, path):
        """Every append is flushed — a crash (no close) loses nothing."""
        journal = Journal(path)
        journal.append("a")
        journal.append("b")
        # A second reader (the "restarted process") sees both records
        # while the first handle is still open.
        assert [r.record_type for r in Journal(path).records()] == ["a", "b"]

    def test_lsn_numbering_resumes_across_restart(self, path):
        journal = Journal(path)
        journal.append("a")
        journal.append("b")
        journal.close()
        reopened = Journal(path)
        assert reopened.last_lsn == 2
        assert reopened.append("c") == 3

    def test_closed_journal_drops_appends(self, path):
        """Crash semantics: a dead process's writes never land."""
        journal = Journal(path)
        journal.append("before")
        journal.close()
        assert journal.append("after") == 0
        assert [r.record_type for r in Journal(path).records()] == ["before"]

    def test_fsync_every_validation(self, path):
        with pytest.raises(JournalError):
            Journal(path, fsync_every=-1)


class TestFsyncSentinel:
    """``fsync_every=0`` is an explicit opt-out: appends never fsync,
    but explicit ``sync()``/``close()`` still do, and every record
    remains readable (appends always flush to the OS)."""

    @pytest.fixture
    def fsync_calls(self, monkeypatch):
        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        return calls

    def test_zero_never_fsyncs_on_append(self, path, fsync_calls):
        journal = Journal(path, fsync_every=0)
        for i in range(100):
            journal.append(f"t.{i}")
        assert fsync_calls == []
        # The opt-out trades durability, not readability: a second
        # reader still sees every flushed record.
        assert len(Journal(path).records()) == 100

    def test_explicit_sync_still_fsyncs(self, path, fsync_calls):
        journal = Journal(path, fsync_every=0)
        journal.append("a")
        assert fsync_calls == []
        journal.sync()
        assert len(fsync_calls) == 1

    def test_close_still_fsyncs(self, path, fsync_calls):
        journal = Journal(path, fsync_every=0)
        journal.append("a")
        journal.close()
        assert len(fsync_calls) == 1

    def test_one_fsyncs_every_append(self, path, fsync_calls):
        journal = Journal(path, fsync_every=1)
        journal.append("a")
        journal.append("b")
        assert len(fsync_calls) == 2


class TestCrashTolerance:
    def test_torn_tail_ignored(self, path):
        journal = Journal(path)
        journal.append("a")
        journal.append("b")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 3, "t": 0.0, "type": "c", "da')  # torn write
        records = Journal(path).records()
        assert [r.record_type for r in records] == ["a", "b"]
        # And numbering never reuses the torn record's lsn space wrongly:
        assert Journal(path).append("c") == 3

    def test_truncated_tail_ignored(self, path):
        journal = Journal(path)
        journal.append("a")
        journal.close()
        with open(path, "rb+") as handle:
            handle.seek(-10, os.SEEK_END)
            handle.truncate()
        assert Journal(path).records() == []

    def test_corrupt_middle_raises(self, path):
        journal = Journal(path)
        journal.append("a")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("NOT JSON AT ALL\n")
            handle.write(
                json.dumps({"lsn": 2, "t": 0.0, "type": "b", "data": {}}) + "\n"
            )
        with pytest.raises(JournalCorrupt):
            Journal(path)

    def test_empty_and_missing_files(self, path):
        assert Journal(path).records() == []  # created empty
        other = str(os.path.dirname(path)) + "/never-written.jsonl"
        journal = Journal(other)
        assert journal.last_lsn == 0


class TestCompaction:
    def test_compact_drops_covered_prefix(self, path):
        journal = Journal(path)
        for i in range(10):
            journal.append(f"t.{i}")
        dropped = journal.compact(upto_lsn=7)
        assert dropped == 7
        assert [r.lsn for r in journal.records()] == [8, 9, 10]
        # Appends continue past the old lsn space.
        assert journal.append("next") == 11

    def test_records_after_cursor(self, path):
        journal = Journal(path)
        for i in range(5):
            journal.append(f"t.{i}")
        assert [r.lsn for r in journal.records(after_lsn=3)] == [4, 5]


class TestLsnContinuity:
    def test_terminated_corrupt_tail_raises(self, path):
        """A newline-terminated final line completed its write (the
        record was acknowledged) — damage there is corruption, not a
        benign torn tail."""
        journal = Journal(path)
        journal.append("a")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 2, "t": 0.0, "type": "b", "broken\n')
        with pytest.raises(JournalCorrupt):
            Journal(path)

    def test_store_never_reissues_lsns_after_compaction_window_crash(
        self, tmp_path
    ):
        """Crash after compaction emptied the journal but before the
        audit marker landed: reopening must resume LSNs past the
        snapshot, or consumer cursors freeze and the stale snapshot
        outranks every newer one."""
        from repro.store.store import ControlPlaneStore

        directory = str(tmp_path / "store")
        store = ControlPlaneStore(directory)
        for i in range(5):
            store.append(f"t.{i}")
        store.checkpoint({"time": 0.0})  # snapshot at lsn 5
        # Simulate the crash window: wipe the journal (as if the marker
        # append never landed) and reopen.
        store.close()
        open(directory + "/journal.jsonl", "w").close()
        reopened = ControlPlaneStore(directory)
        assert reopened.append("after-restart") > 5
        # A new checkpoint must outrank the pre-crash snapshot.
        lsn = reopened.checkpoint({"time": 1.0, "marker": "new"})
        assert lsn > 5
        state, loaded_lsn = reopened.snapshots.load_latest()
        assert loaded_lsn == lsn
        assert state.get("marker") == "new"
