"""Shared fixtures for the durable-store suite: a testbed whose
southbound survives "crashes" (the controllers and drivers are
long-lived objects, like real hardware) while the orchestrator — the
control plane — is rebuilt from the store."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.slices import PlmnPool
from repro.drivers.mock import MockDriver
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.store import ControlPlaneStore


@pytest.fixture
def durable_testbed() -> Testbed:
    """A testbed scaled for concurrent 16+-slice batches, with an extra
    pure-mock ``firewall`` domain for chaos injection and exact
    held-capacity accounting."""
    testbed = build_testbed(
        TestbedConfig(n_enbs=4, max_plmns_per_enb=12, plmn_pool_size=40)
    )
    testbed.registry.register(
        MockDriver("firewall", capacity_mbps=100_000.0, max_concurrent_installs=8)
    )
    return testbed


def make_orchestrator(
    testbed: Testbed,
    store: "ControlPlaneStore | None" = None,
    directory: Optional[str] = None,
    seed: int = 7,
    **config_overrides,
) -> Orchestrator:
    """A fresh control plane over the (surviving) testbed southbound.

    Pass ``store`` to reopen an existing store (the restart path) or
    ``directory`` to open a new one; each call gets its own simulator
    and PLMN pool — exactly what a process restart loses.
    """
    config = OrchestratorConfig(
        durability_dir=directory,
        monitoring_epoch_s=60.0,
        **config_overrides,
    )
    return Orchestrator(
        sim=Simulator(),
        allocator=testbed.allocator,
        plmn_pool=PlmnPool(size=testbed.config.plmn_pool_size),
        config=config,
        streams=RandomStreams(seed=seed),
        registry=testbed.registry,
        store=store,
    )


def reopen_store(directory: str, **kwargs) -> ControlPlaneStore:
    """The restart side of a simulated crash: a fresh store handle over
    the same journal + snapshots."""
    return ControlPlaneStore(directory, **kwargs)
