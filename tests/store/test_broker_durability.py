"""Durable broker windows: kill the control plane mid-window.

A batch-mode tenant's enqueue is *acknowledged* the moment ``submit``
returns — so it must survive the process.  The broker write-aheads
``broker.enqueued`` before the request joins the window and journals
``broker.decided`` when the window flushes; recovery re-offers every
enqueued-but-undecided request through full admission (the window died
before any decision existed, so the requests were never admitted — a
re-offer through admission control, not a blind re-install).
"""

from __future__ import annotations

import pytest

from repro.core.broker import SliceBroker
from repro.core.slices import SliceState
from repro.store import RecoveryManager
from repro.traffic.patterns import ConstantProfile

from tests.conftest import make_request
from tests.store.conftest import make_orchestrator, reopen_store

MBPS = 5.0
WINDOW_S = 300.0


def _fold(directory):
    """The replayed state a restart would boot from (snapshot + tail)."""
    store = reopen_store(directory)
    try:
        return store.replay()
    finally:
        store.close()


def test_kill_mid_window_reoffers_enqueued_requests(durable_testbed, tmp_path):
    directory = str(tmp_path / "store")
    first = make_orchestrator(durable_testbed, directory=directory)
    first.start()
    broker = SliceBroker(first, window_s=WINDOW_S)

    # Three acknowledged enqueues; the window never flushes.
    requests = [make_request(throughput_mbps=MBPS) for _ in range(3)]
    for request in requests:
        broker.submit(request, ConstantProfile(MBPS))
    assert broker.pending == 3
    assert first.live_slices() == []  # nothing decided yet

    # SIGKILL before the window closes: the enqueues are journaled,
    # the decisions never happen.
    first.store.close()

    state = _fold(directory)
    assert set(state.broker_pending) == {r.request_id for r in requests}

    # A fresh control plane re-offers every pending request.
    restarted = make_orchestrator(durable_testbed, store=reopen_store(directory))
    restarted.start()
    report = RecoveryManager(restarted).restore()
    assert report.broker_requeued == 3

    # Re-offer goes through *full* admission: plenty of capacity here,
    # so all three become live slices.
    live = restarted.live_slices()
    assert {s.request.request_id for s in live} == {
        r.request_id for r in requests
    }
    assert all(
        s.state in (SliceState.ADMITTED, SliceState.DEPLOYING, SliceState.ACTIVE)
        for s in live
    )

    # The re-offer is decided: a second crash+recovery must not
    # re-offer again (broker_pending drained by the re-offer records).
    assert _fold(directory).broker_pending == {}


def test_flushed_window_is_not_reoffered(durable_testbed, tmp_path):
    """``broker.decided`` closes the loop: a crash *after* the flush
    re-adopts the installed slices but re-offers nothing."""
    directory = str(tmp_path / "store")
    first = make_orchestrator(durable_testbed, directory=directory)
    first.start()
    broker = SliceBroker(first, window_s=WINDOW_S)
    requests = [make_request(throughput_mbps=MBPS) for _ in range(2)]
    for request in requests:
        broker.submit(request, ConstantProfile(MBPS))
    first.sim.run_until(WINDOW_S + 1.0)  # the window flushes
    decisions = broker.decisions
    assert len(decisions) == 2 and all(d.admitted for d in decisions)
    first.store.close()

    assert _fold(directory).broker_pending == {}

    restarted = make_orchestrator(durable_testbed, store=reopen_store(directory))
    restarted.start()
    report = RecoveryManager(restarted).restore()
    assert report.broker_requeued == 0
    assert report.slices_adopted == 2
    assert report.slices_lost == 0


def test_pending_window_rides_in_checkpoints(durable_testbed, tmp_path):
    """The ``broker_pending`` durable section: a checkpoint taken
    mid-window snapshots the queue, so recovery that starts from the
    snapshot (journal compacted) still re-offers."""
    directory = str(tmp_path / "store")
    first = make_orchestrator(durable_testbed, directory=directory)
    first.start()
    broker = SliceBroker(first, window_s=WINDOW_S)
    request = make_request(throughput_mbps=MBPS)
    broker.submit(request, ConstantProfile(MBPS))
    first.checkpoint()  # compacts the journal mid-window
    first.store.close()

    restarted = make_orchestrator(durable_testbed, store=reopen_store(directory))
    restarted.start()
    report = RecoveryManager(restarted).restore()
    assert report.broker_requeued == 1
    assert [s.request.request_id for s in restarted.live_slices()] == [
        request.request_id
    ]
