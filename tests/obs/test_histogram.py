"""Fixed-bucket latency histogram: bucket placement, quantile
estimation, the lock-free pending queue, and cross-label merging."""

from __future__ import annotations

import threading

import pytest

from repro.obs.histogram import DEFAULT_BUCKETS_MS, LatencyHistogram


class TestBucketCorrectness:
    def test_observation_lands_in_first_bucket_with_bound_gte_value(self):
        hist = LatencyHistogram("x", buckets_ms=(1.0, 10.0, 100.0))
        hist.observe(0.5)   # <= 1.0
        hist.observe(1.0)   # boundary: still the 1.0 bucket (le semantics)
        hist.observe(5.0)   # <= 10.0
        hist.observe(99.0)  # <= 100.0
        hist.observe(500.0)  # overflow -> +Inf
        buckets = dict(hist.bucket_counts())
        assert buckets[1.0] == 2
        assert buckets[10.0] == 3
        assert buckets[100.0] == 4
        assert buckets[float("inf")] == 5

    def test_cumulative_counts_are_monotone(self):
        hist = LatencyHistogram("x")
        for v in (0.01, 0.3, 7.0, 80.0, 3_000.0, 99_999.0):
            hist.observe(v)
        counts = [c for _, c in hist.bucket_counts()]
        assert counts == sorted(counts)
        assert counts[-1] == 6

    def test_aggregates(self):
        hist = LatencyHistogram("x")
        for v in (2.0, 4.0, 6.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum_ms == pytest.approx(12.0)
        assert hist.max_ms == pytest.approx(6.0)
        assert hist.min_ms == pytest.approx(2.0)
        data = hist.to_dict()
        assert data["mean_ms"] == pytest.approx(4.0)

    def test_empty_histogram_is_all_zeros(self):
        data = LatencyHistogram("x").to_dict()
        assert data["count"] == 0
        assert data["p50_ms"] == 0.0
        assert data["min_ms"] == 0.0
        assert data["max_ms"] == 0.0

    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


class TestQuantiles:
    def test_quantiles_interpolate_within_crossing_bucket(self):
        hist = LatencyHistogram("x", buckets_ms=(10.0, 20.0, 30.0))
        for _ in range(100):
            hist.observe(15.0)  # all in the (10, 20] bucket
        p50 = hist.quantile(0.50)
        assert 10.0 < p50 <= 20.0

    def test_quantile_never_exceeds_observed_max(self):
        hist = LatencyHistogram("x", buckets_ms=(10.0, 1_000.0))
        for _ in range(10):
            hist.observe(12.0)
        assert hist.quantile(0.99) <= 12.0

    def test_overflow_bucket_quantile_reports_max(self):
        hist = LatencyHistogram("x", buckets_ms=(1.0,))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.quantile(0.99) == pytest.approx(70.0)


class TestLockFreeWritePath:
    def test_reads_fold_pending_observations(self):
        # observe() only appends to the pending queue; any read-side
        # accessor must fold the queue before answering.
        hist = LatencyHistogram("x")
        hist.observe(1.0)
        assert len(hist._pending) == 1
        assert hist.count == 1
        assert len(hist._pending) == 0

    def test_writer_backstop_bounds_pending_queue(self):
        from repro.obs import histogram as mod

        hist = LatencyHistogram("x")
        for _ in range(mod._DRAIN_BACKSTOP + 10):
            hist.observe(0.5)
        assert len(hist._pending) < mod._DRAIN_BACKSTOP
        assert hist.count == mod._DRAIN_BACKSTOP + 10

    def test_concurrent_writers_and_readers_lose_nothing(self):
        hist = LatencyHistogram("x")
        per_writer = 10_000

        def write():
            for _ in range(per_writer):
                hist.observe(0.25)

        def read():
            for _ in range(100):
                hist.to_dict()
                hist.quantile(0.99)

        threads = [threading.Thread(target=write) for _ in range(4)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4 * per_writer
        assert hist.sum_ms == pytest.approx(4 * per_writer * 0.25)


class TestMerge:
    def test_merge_folds_counts_and_aggregates(self):
        a = LatencyHistogram("driver.prepare", label="ran")
        b = LatencyHistogram("driver.prepare", label="epc")
        merged = LatencyHistogram("driver.prepare")
        a.observe(1.0)
        a.observe(100.0)
        b.observe(0.1)
        a.merge_into(merged)
        b.merge_into(merged)
        assert merged.count == 3
        assert merged.max_ms == pytest.approx(100.0)
        assert merged.min_ms == pytest.approx(0.1)
        assert merged.sum_ms == pytest.approx(101.1)

    def test_merge_rejects_mismatched_bounds(self):
        a = LatencyHistogram("x", buckets_ms=(1.0, 2.0))
        b = LatencyHistogram("x", buckets_ms=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_into(b)
