"""The ControlPlaneObservability facade: span->histogram feeding,
timed blocks/locks, counters/gauges, and the cross-label summary."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import ControlPlaneObservability


@pytest.fixture()
def obs() -> ControlPlaneObservability:
    return ControlPlaneObservability()


class TestSpanHistogramFeeding:
    def test_every_finished_span_feeds_its_named_histogram(self, obs):
        obs.span("admission", label="sync").finish()
        obs.span("admission", label="sync").finish()
        hist = obs.histogram("admission", "sync")
        assert hist.count == 2

    def test_labels_keep_separate_series(self, obs):
        obs.span("driver.prepare", label="ran").finish()
        obs.span("driver.prepare", label="epc").finish()
        assert obs.histogram("driver.prepare", "ran").count == 1
        assert obs.histogram("driver.prepare", "epc").count == 1

    def test_histogram_instances_are_cached(self, obs):
        assert obs.histogram("a") is obs.histogram("a")
        assert obs.histogram("a") is not obs.histogram("a", "label")


class TestTimedHelpers:
    def test_timed_block_observes_duration(self, obs):
        with obs.timed("broker.decide"):
            pass
        hist = obs.histogram("broker.decide")
        assert hist.count == 1
        assert hist.max_ms >= 0.0

    def test_timed_lock_records_wait_and_hold(self, obs):
        lock = threading.Lock()
        with obs.timed_lock(lock, "journal.lock"):
            assert lock.locked()
        assert not lock.locked()
        assert obs.histogram("journal.lock.wait").count == 1
        assert obs.histogram("journal.lock.hold").count == 1


class TestCountersAndGauges:
    def test_counter_accumulates(self, obs):
        obs.counter_add("events.emitted")
        obs.counter_add("events.emitted", 2.0)
        assert obs.counters()[("events.emitted", "")] == pytest.approx(3.0)

    def test_gauge_overwrites(self, obs):
        obs.gauge_set("queue.pending_installs", 5)
        obs.gauge_set("queue.pending_installs", 2)
        assert obs.gauges()[("queue.pending_installs", "")] == pytest.approx(2.0)


class TestSummaries:
    def test_merged_histogram_folds_labels(self, obs):
        obs.observe("driver.commit", 1.0, label="ran")
        obs.observe("driver.commit", 3.0, label="epc")
        merged = obs.merged_histogram("driver.commit")
        assert merged.count == 2
        assert merged.max_ms == pytest.approx(3.0)

    def test_stage_summary_skips_silent_stages(self, obs):
        obs.observe("admission", 0.5)
        summary = obs.stage_summary(["admission", "placement"])
        assert set(summary) == {"admission"}
        assert summary["admission"]["count"] == 1

    def test_status_counts_instruments(self, obs):
        obs.observe("a", 1.0)
        obs.counter_add("b")
        obs.gauge_set("c", 1)
        status = obs.status()
        assert status["enabled"] is True
        assert status["histograms"] == 1
        assert status["counters"] == 1
        assert status["gauges"] == 1
        assert status["tracer"]["spans_started"] == 0
