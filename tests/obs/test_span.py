"""Tracer/span semantics: explicit context propagation, idempotent
close, bounded retention, slow-span ancestry."""

from __future__ import annotations

import threading

from repro.obs.span import SpanContext, Tracer


class TestSpanLifecycle:
    def test_root_span_starts_a_trace(self):
        tracer = Tracer()
        root = tracer.start_span("install.batch")
        assert root.context.parent_id is None
        assert root.context.trace_id == root.context.span_id
        assert root.status == "in_flight"
        root.finish()
        assert root.status == "ok"
        assert root.duration_ms is not None and root.duration_ms >= 0.0

    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.start_span("install.batch")
        child = tracer.start_span("install.job", parent=root.context)
        assert child.context.trace_id == root.context.trace_id
        assert child.context.parent_id == root.context.span_id
        assert child.context.span_id != root.context.span_id

    def test_finish_is_idempotent_first_close_wins(self):
        # A completion callback and a deadline timer may race to close
        # the same operation span; the first close must win.
        tracer = Tracer()
        span = tracer.start_span("driver.prepare")
        span.finish("error", error="deadline exceeded")
        span.finish("ok")
        assert span.status == "error"
        assert span.error == "deadline exceeded"
        assert tracer.spans_finished == 1

    def test_context_manager_marks_exceptions_as_error(self):
        tracer = Tracer()
        try:
            with tracer.start_span("journal") as span:
                raise ValueError("disk full")
        except ValueError:
            pass
        assert span.status == "error"
        assert "disk full" in span.error

    def test_trace_assembled_when_root_finishes(self):
        tracer = Tracer()
        root = tracer.start_span("install.batch")
        child = tracer.start_span("install.job", parent=root.context)
        grandchild = tracer.start_span(
            "driver.prepare", parent=child.context, label="ran"
        )
        grandchild.finish()
        child.finish()
        assert tracer.traces() == []  # root still open
        root.finish()
        (trace,) = tracer.traces()
        assert trace["root"] == "install.batch"
        assert trace["span_count"] == 3
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["install.job"]["parent_id"] == by_name["install.batch"]["span_id"]
        assert by_name["driver.prepare"]["parent_id"] == by_name["install.job"]["span_id"]
        assert by_name["driver.prepare"]["label"] == "ran"
        assert all(s["start_offset_ms"] >= 0.0 for s in trace["spans"])

    def test_ids_render_as_stable_strings(self):
        tracer = Tracer()
        root = tracer.start_span("a")
        root.finish()
        (trace,) = tracer.traces()
        assert trace["trace_id"].startswith("t")
        span = trace["spans"][0]
        assert span["span_id"].startswith("s")
        assert span["parent_id"] is None


class TestContextPropagationAcrossThreads:
    def test_children_created_and_finished_on_other_threads(self):
        # The planner pattern: the context is carried through job
        # state, children are opened and closed on worker/timer
        # threads, and the assembled trace still has exact parentage.
        tracer = Tracer()
        root = tracer.start_span("install.batch")

        def worker(i: int) -> None:
            child = tracer.start_span("driver.commit", parent=root.context)
            child.finish()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        root.finish()
        (trace,) = tracer.traces()
        assert trace["span_count"] == 9
        root_id = trace["spans"][0]["span_id"]
        children = [s for s in trace["spans"] if s["name"] == "driver.commit"]
        assert len(children) == 8
        assert all(s["parent_id"] == root_id for s in children)
        assert tracer.active_span_count == 0


class TestBoundsAndRetention:
    def test_trace_retention_is_bounded_newest_first(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.start_span(f"batch-{i}").finish()
        traces = tracer.traces()
        assert [t["root"] for t in traces] == ["batch-3", "batch-2"]

    def test_traces_limit_parameter(self):
        tracer = Tracer(capacity=8)
        for i in range(5):
            tracer.start_span(f"b{i}").finish()
        assert len(tracer.traces(limit=2)) == 2

    def test_span_after_trace_assembled_is_dropped_not_retained(self):
        tracer = Tracer()
        root = tracer.start_span("install.batch")
        context = root.context
        root.finish()
        late = tracer.start_span("driver.release", parent=context)
        late.finish()
        assert tracer.spans_dropped == 1
        (trace,) = tracer.traces()
        assert trace["span_count"] == 1  # late child not retained

    def test_overfull_trace_drops_surplus_spans(self):
        tracer = Tracer(max_spans_per_trace=3)
        root = tracer.start_span("r")
        for _ in range(5):
            tracer.start_span("c", parent=root.context).finish()
        root.finish()
        (trace,) = tracer.traces()
        assert trace["span_count"] == 3
        assert tracer.spans_dropped == 3

    def test_active_trace_bound_evicts_oldest_root(self):
        tracer = Tracer(max_active_traces=2)
        roots = [tracer.start_span(f"r{i}") for i in range(3)]
        # r0's trace was evicted; finishing it retains nothing.
        roots[0].finish()
        assert tracer.traces() == []
        roots[2].finish()
        assert [t["root"] for t in tracer.traces()] == ["r2"]


class TestSlowSpans:
    def test_slow_span_recorded_with_ancestry(self):
        tracer = Tracer(slow_threshold_ms=0.0)  # everything is "slow"
        root = tracer.start_span("install.batch")
        child = tracer.start_span("install.job", parent=root.context)
        op = tracer.start_span("driver.prepare", parent=child.context, label="epc")
        op.finish()
        entries = tracer.slow_spans()
        assert entries and entries[0]["name"] == "driver.prepare"
        chain = [a["name"] for a in entries[0]["ancestry"]]
        assert chain == ["install.batch", "install.job"]
        root.finish()
        child.finish()

    def test_fast_span_not_recorded(self):
        tracer = Tracer(slow_threshold_ms=10_000.0)
        tracer.start_span("quick").finish()
        assert tracer.slow_spans() == []


class TestStatus:
    def test_counters_exact_at_quiescence(self):
        tracer = Tracer()
        root = tracer.start_span("r")
        tracer.start_span("c", parent=root.context).finish()
        root.finish()
        status = tracer.status()
        assert status["spans_started"] == 2
        assert status["spans_finished"] == 2
        assert status["spans_dropped"] == 0
        assert status["active_traces"] == 0
        assert status["retained_traces"] == 1
