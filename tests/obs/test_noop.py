"""The disabled path: shared no-op singletons, surface parity with the
real observability object, and zero retained state."""

from __future__ import annotations

import threading

from repro.obs.registry import (
    NOOP_OBS,
    NOOP_SPAN,
    ControlPlaneObservability,
    NoopObservability,
    default_observability,
)


class TestNoopSingletons:
    def test_span_returns_the_shared_noop_span(self):
        assert NOOP_OBS.span("install.batch") is NOOP_SPAN
        assert NOOP_OBS.span("x", label="ran", slice_id="s1") is NOOP_SPAN

    def test_noop_span_is_inert_and_reusable(self):
        span = NOOP_OBS.span("a")
        assert span.finish() is span
        assert span.finish("error", error="boom") is span
        with span:
            pass
        assert span.to_dict() == {}
        assert span.context is None

    def test_recording_methods_are_noops(self):
        NOOP_OBS.observe("journal.append", 1.23)
        NOOP_OBS.counter_add("events.emitted")
        NOOP_OBS.gauge_set("queue.pending_installs", 4)
        assert NOOP_OBS.histograms() == {}
        assert NOOP_OBS.counters() == {}
        assert NOOP_OBS.gauges() == {}
        assert NOOP_OBS.traces() == []
        assert NOOP_OBS.slow_spans() == []
        assert NOOP_OBS.stage_summary(["admission"]) == {}
        assert NOOP_OBS.merged_histogram("admission") is None

    def test_status_reports_disabled(self):
        assert NOOP_OBS.status() == {"enabled": False}
        assert NOOP_OBS.enabled is False

    def test_timed_is_a_working_context_manager(self):
        with NOOP_OBS.timed("broker.decide"):
            pass

    def test_timed_lock_still_locks(self):
        # Correctness must not depend on observability: the no-op
        # variant skips the timing but must still acquire the lock.
        lock = threading.Lock()
        with NOOP_OBS.timed_lock(lock, "journal.lock"):
            assert lock.locked()
        assert not lock.locked()


class TestSurfaceParity:
    def test_noop_has_every_public_method_of_the_real_thing(self):
        real = {
            n
            for n in dir(ControlPlaneObservability)
            if not n.startswith("_")
        }
        noop = {n for n in dir(NoopObservability) if not n.startswith("_")}
        assert real <= noop, f"no-op is missing: {sorted(real - noop)}"


class TestDefaultObservability:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_ENABLED", raising=False)
        assert default_observability() is NOOP_OBS

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_ENABLED", "1")
        obs = default_observability()
        assert isinstance(obs, ControlPlaneObservability)
        assert obs.enabled is True

    def test_other_values_stay_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_ENABLED", "0")
        assert default_observability() is NOOP_OBS
