"""Prometheus text exposition: format validity, the cp_/sim_ namespace
split, and the disabled-mode scrape."""

from __future__ import annotations

import re

from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.registry import NOOP_OBS, ControlPlaneObservability

#: ``name{labels} value`` or ``name value`` — one sample per line.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE]+(\+Inf)?$"
)


class FakeSimMetrics:
    def to_prometheus(self) -> str:
        return (
            "# TYPE slice_demand_mbps gauge\n"
            'slice_demand_mbps{slice="s0"} 4.0\n'
        )


def populated_obs() -> ControlPlaneObservability:
    obs = ControlPlaneObservability()
    with obs.span("install.batch") as root:
        obs.span("driver.prepare", parent=root.context, label="ran").finish()
    obs.observe("journal.append", 0.7)
    obs.counter_add("events.emitted", 3)
    obs.gauge_set("queue.pending_installs", 2)
    return obs


class TestExposition:
    def test_every_line_is_a_comment_or_a_valid_sample(self):
        text = render_prometheus(populated_obs(), FakeSimMetrics())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_histogram_series_shape(self):
        text = render_prometheus(populated_obs())
        assert "# TYPE cp_journal_append_ms histogram" in text
        assert re.search(r'cp_journal_append_ms_bucket\{le="\+Inf"\} 1', text)
        assert "cp_journal_append_ms_count 1" in text
        assert "cp_journal_append_ms_sum" in text
        assert "cp_journal_append_ms_max" in text

    def test_span_fed_histograms_carry_their_label(self):
        text = render_prometheus(populated_obs())
        assert re.search(r'cp_driver_prepare_ms_count\{label="ran"\} 1', text)

    def test_counters_gauges_and_tracer_series(self):
        text = render_prometheus(populated_obs())
        assert "cp_events_emitted_total 3" in text
        assert "cp_queue_pending_installs 2" in text
        assert "cp_tracer_spans_started_total 2" in text
        assert "cp_tracer_spans_finished_total 2" in text

    def test_type_declared_once_per_metric(self):
        text = render_prometheus(populated_obs())
        declarations = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert len(declarations) == len(set(declarations))

    def test_dotted_names_are_sanitized(self):
        text = render_prometheus(populated_obs())
        assert "." not in "".join(
            ln.split("{")[0].split(" ")[0]
            for ln in text.splitlines()
            if not ln.startswith("#")
        )


class TestSimNamespace:
    def test_sim_telemetry_reemitted_under_prefix(self):
        text = render_prometheus(NOOP_OBS, FakeSimMetrics())
        assert 'sim_slice_demand_mbps{slice="s0"} 4.0' in text
        assert "# TYPE sim_slice_demand_mbps gauge" in text

    def test_no_sim_metrics_means_no_sim_lines(self):
        text = render_prometheus(populated_obs(), None)
        assert "sim_" not in text


class TestDisabledScrape:
    def test_disabled_scrape_has_no_cp_lines_but_stays_valid(self):
        text = render_prometheus(NOOP_OBS, FakeSimMetrics())
        assert "cp_" not in text
        assert text.endswith("\n")

    def test_content_type_is_the_prometheus_text_format(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
