"""Tests for transport links."""

from __future__ import annotations

import pytest

from repro.transport.links import (
    DEFAULT_LINK_SPECS,
    Link,
    LinkError,
    LinkKind,
    LinkState,
)


@pytest.fixture
def link():
    return Link("l1", "a", "b", LinkKind.MMWAVE, capacity_mbps=100.0, delay_ms=1.0)


class TestConstruction:
    def test_defaults_from_kind(self):
        link = Link("l1", "a", "b", LinkKind.MICROWAVE)
        cap, delay = DEFAULT_LINK_SPECS[LinkKind.MICROWAVE]
        assert link.capacity_mbps == cap
        assert link.delay_ms == delay

    def test_bad_capacity_rejected(self):
        with pytest.raises(LinkError):
            Link("l1", "a", "b", capacity_mbps=0.0)

    def test_bad_delay_rejected(self):
        with pytest.raises(LinkError):
            Link("l1", "a", "b", delay_ms=-1.0)


class TestReservations:
    def test_reserve_reduces_residual(self, link):
        link.reserve("s1", nominal_mbps=40.0, effective_mbps=30.0)
        assert link.residual_mbps == pytest.approx(70.0)
        assert link.nominal_reserved_mbps == pytest.approx(40.0)
        assert link.has("s1")

    def test_over_capacity_rejected(self, link):
        link.reserve("s1", 80.0, 80.0)
        with pytest.raises(LinkError):
            link.reserve("s2", 30.0, 30.0)

    def test_nominal_overbooking_allowed(self, link):
        link.reserve("s1", 80.0, 50.0)
        link.reserve("s2", 80.0, 50.0)
        assert link.nominal_reserved_mbps == pytest.approx(160.0)
        assert link.residual_mbps == pytest.approx(0.0)

    def test_effective_above_nominal_rejected(self, link):
        with pytest.raises(LinkError):
            link.reserve("s1", 10.0, 11.0)

    def test_duplicate_rejected(self, link):
        link.reserve("s1", 10.0, 10.0)
        with pytest.raises(LinkError):
            link.reserve("s1", 5.0, 5.0)

    def test_release(self, link):
        link.reserve("s1", 10.0, 10.0)
        link.release("s1")
        assert link.residual_mbps == pytest.approx(100.0)
        with pytest.raises(LinkError):
            link.release("s1")

    def test_resize(self, link):
        link.reserve("s1", 40.0, 40.0)
        link.resize("s1", 20.0)
        assert link.residual_mbps == pytest.approx(80.0)
        with pytest.raises(LinkError):
            link.resize("s1", 41.0)  # above nominal

    def test_resize_unknown_rejected(self, link):
        with pytest.raises(LinkError):
            link.resize("ghost", 5.0)


class TestFailureInjection:
    def test_down_link_has_zero_residual(self, link):
        link.fail()
        assert link.state is LinkState.DOWN
        assert link.residual_mbps == 0.0
        assert not link.up

    def test_reserve_on_down_link_rejected(self, link):
        link.fail()
        with pytest.raises(LinkError):
            link.reserve("s1", 1.0, 1.0)

    def test_restore_recovers_reservations(self, link):
        link.reserve("s1", 30.0, 30.0)
        link.fail()
        link.restore()
        assert link.residual_mbps == pytest.approx(70.0)

    def test_utilization_snapshot(self, link):
        link.reserve("s1", 30.0, 20.0)
        snap = link.utilization()
        assert snap["effective_reserved_mbps"] == pytest.approx(20.0)
        assert snap["slices"] == ["s1"]
        assert snap["state"] == "up"
