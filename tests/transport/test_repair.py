"""Tests for transport path self-healing."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.controller import TransportError
from repro.transport.paths import PathRequest
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


@pytest.fixture
def reserved(testbed):
    """A slice path reserved over the mmWave uplink."""
    controller = testbed.transport
    allocation = controller.reserve_path(
        "s1",
        "00101",
        PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=50.0, max_delay_ms=10.0),
    )
    assert allocation.path.link_ids[0] == "enb1-mmwave-fwd"
    return testbed, controller, allocation


class TestRepairPath:
    def test_healthy_path_noop(self, reserved):
        _, controller, allocation = reserved
        assert controller.path_healthy("s1")
        repaired = controller.repair_path("s1")
        assert repaired.path.link_ids == allocation.path.link_ids
        assert controller.repairs_performed == 0

    def test_reroutes_around_failed_link(self, reserved):
        testbed, controller, _ = reserved
        testbed.transport.topology.link("enb1-mmwave-fwd").fail()
        assert not controller.path_healthy("s1")
        repaired = controller.repair_path("s1")
        assert repaired.path.link_ids[0] == "enb1-uwave-fwd"
        assert controller.repairs_performed == 1
        # Reservations moved: old link free of s1, new link holds it.
        assert not testbed.transport.topology.link("enb1-mmwave-fwd").has("s1")
        assert testbed.transport.topology.link("enb1-uwave-fwd").has("s1")

    def test_flows_reprogrammed(self, reserved):
        testbed, controller, _ = reserved
        testbed.transport.topology.link("enb1-mmwave-fwd").fail()
        controller.repair_path("s1")
        flows = testbed.switch.flows_of("s1")
        assert len(flows) == 1
        assert flows[0].match.plmn_id == "00101"

    def test_no_detour_raises_and_preserves_surviving_reservations(self, reserved):
        testbed, controller, _ = reserved
        testbed.transport.topology.link("enb1-mmwave-fwd").fail()
        testbed.transport.topology.link("enb1-uwave-fwd").fail()
        with pytest.raises(TransportError):
            controller.repair_path("s1")
        # Surviving link (switch->edge) still carries the reservation.
        assert testbed.transport.topology.link("switch-edge-fwd").has("s1")

    def test_reconciliation_after_link_recovery(self, reserved):
        testbed, controller, _ = reserved
        topo = testbed.transport.topology
        topo.link("enb1-mmwave-fwd").fail()
        topo.link("enb1-uwave-fwd").fail()
        with pytest.raises(TransportError):
            controller.repair_path("s1")
        topo.link("enb1-mmwave-fwd").restore()
        repaired = controller.repair_path("s1")  # healthy again → reconcile
        assert topo.link("enb1-mmwave-fwd").has("s1")
        assert repaired.effective_mbps == pytest.approx(50.0)

    def test_repair_unknown_slice_rejected(self, testbed):
        with pytest.raises(TransportError):
            testbed.transport.repair_path("ghost")

    def test_repair_respects_delay_bound(self, testbed):
        """A 2 ms-bound path over mmWave cannot detour via 2.5 ms µwave."""
        controller = testbed.transport
        controller.reserve_path(
            "tight",
            "00102",
            PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=10.0, max_delay_ms=2.0),
        )
        testbed.transport.topology.link("enb1-mmwave-fwd").fail()
        with pytest.raises(TransportError):
            controller.repair_path("tight")


class TestOrchestratorSelfHealing:
    def _orchestrator(self, testbed, self_healing=True):
        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            config=OrchestratorConfig(self_healing=self_healing),
            streams=RandomStreams(seed=6),
        )
        orch.start()
        return sim, orch

    def test_slice_rerouted_within_one_epoch(self, testbed):
        sim, orch = self._orchestrator(testbed)
        request = make_request(throughput_mbps=15.0, duration_s=3_600.0)
        orch.submit(request, ConstantProfile(15.0, level=0.6, noise_std=0.0))
        sim.run_until(120.0)
        slice_id = request.request_id.replace("req-", "slice-")
        first_link = orch.slice(slice_id).allocation.transport.path.link_ids[0]
        testbed.transport.topology.link(first_link).fail()
        sim.run_until(300.0)
        new_path = orch.slice(slice_id).allocation.transport.path.link_ids
        assert first_link not in new_path
        assert testbed.transport.repairs_performed == 1
        # Service continued: no lasting violations after the repair epoch.
        assert orch.sla_monitor.violation_rate(slice_id) < 0.5

    def test_without_self_healing_violations_accrue(self, testbed):
        sim, orch = self._orchestrator(testbed, self_healing=False)
        request = make_request(throughput_mbps=15.0, duration_s=3_600.0)
        orch.submit(request, ConstantProfile(15.0, level=0.6, noise_std=0.0))
        sim.run_until(120.0)
        slice_id = request.request_id.replace("req-", "slice-")
        first_link = orch.slice(slice_id).allocation.transport.path.link_ids[0]
        testbed.transport.topology.link(first_link).fail()
        sim.run_until(1_200.0)
        assert orch.sla_monitor.violation_rate(slice_id) > 0.5
        assert orch.ledger.total_penalties > 0.0
