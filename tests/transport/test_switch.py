"""Tests for the OpenFlow-style switch."""

from __future__ import annotations

import pytest

from repro.transport.switch import FlowEntry, FlowMatch, OpenFlowSwitch, SwitchError


@pytest.fixture
def switch():
    return OpenFlowSwitch("sw1", n_ports=8)


def test_install_and_lookup(switch):
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=3, slice_id="s1"))
    entry = switch.lookup("00101", in_port=0)
    assert entry is not None and entry.out_port == 3


def test_table_miss_returns_none(switch):
    assert switch.lookup("00199", in_port=0) is None


def test_priority_order(switch):
    switch.install(FlowEntry(FlowMatch(), out_port=1, priority=10))
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=2, priority=200))
    assert switch.lookup("00101", 0).out_port == 2
    assert switch.lookup("00102", 0).out_port == 1


def test_specificity_breaks_priority_ties(switch):
    switch.install(FlowEntry(FlowMatch(), out_port=1, priority=100))
    switch.install(FlowEntry(FlowMatch(plmn_id="00101", in_port=2), out_port=5, priority=100))
    assert switch.lookup("00101", 2).out_port == 5


def test_in_port_match(switch):
    switch.install(FlowEntry(FlowMatch(in_port=4), out_port=6))
    assert switch.lookup("any", 4).out_port == 6
    assert switch.lookup("any", 5) is None


def test_forward_updates_counters(switch):
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=3, slice_id="s1"))
    assert switch.forward("00101", 0, n_bytes=500) == 3
    assert switch.forward("00101", 0, n_bytes=700) == 3
    entry = switch.flows()[0]
    assert entry.packets == 2
    assert entry.bytes == 1_200


def test_forward_miss_returns_none(switch):
    assert switch.forward("00101", 0) is None


def test_duplicate_flow_rejected(switch):
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=1, priority=50))
    with pytest.raises(SwitchError):
        switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=2, priority=50))


def test_bad_ports_rejected(switch):
    with pytest.raises(SwitchError):
        switch.install(FlowEntry(FlowMatch(), out_port=8))
    with pytest.raises(SwitchError):
        switch.install(FlowEntry(FlowMatch(in_port=99), out_port=1))
    with pytest.raises(SwitchError):
        switch.lookup("x", in_port=99)


def test_remove_slice_flows(switch):
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=1, slice_id="s1"))
    switch.install(FlowEntry(FlowMatch(plmn_id="00102"), out_port=2, slice_id="s2"))
    assert switch.remove_slice_flows("s1") == 1
    assert switch.flows_of("s1") == []
    assert len(switch.flows_of("s2")) == 1


def test_stats_structure(switch):
    switch.install(FlowEntry(FlowMatch(plmn_id="00101"), out_port=1, slice_id="s1"))
    stats = switch.stats()
    assert stats["n_flows"] == 1
    assert stats["flows"][0]["slice_id"] == "s1"


def test_zero_ports_rejected():
    with pytest.raises(SwitchError):
        OpenFlowSwitch("bad", n_ports=0)
