"""Tests for constrained path computation (CSPF + Yen)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.links import Link
from repro.transport.paths import (
    PathComputationError,
    PathRequest,
    constrained_shortest_path,
    k_shortest_paths,
)
from repro.transport.topology import Topology


@pytest.fixture
def diamond():
    """a → b → d (fast, thin) and a → c → d (slow, fat)."""
    t = Topology()
    t.add_link(Link("ab", "a", "b", capacity_mbps=50, delay_ms=1))
    t.add_link(Link("bd", "b", "d", capacity_mbps=50, delay_ms=1))
    t.add_link(Link("ac", "a", "c", capacity_mbps=500, delay_ms=5))
    t.add_link(Link("cd", "c", "d", capacity_mbps=500, delay_ms=5))
    return t


class TestCspf:
    def test_picks_min_delay(self, diamond):
        path = constrained_shortest_path(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=10, max_delay_ms=100)
        )
        assert path.link_ids == ("ab", "bd")
        assert path.delay_ms == pytest.approx(2.0)
        assert path.bottleneck_mbps == pytest.approx(50.0)

    def test_bandwidth_constraint_reroutes(self, diamond):
        path = constrained_shortest_path(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=100, max_delay_ms=100)
        )
        assert path.link_ids == ("ac", "cd")

    def test_delay_bound_violation_raises(self, diamond):
        with pytest.raises(PathComputationError) as excinfo:
            constrained_shortest_path(
                diamond, PathRequest("a", "d", min_bandwidth_mbps=100, max_delay_ms=5)
            )
        assert "delay" in str(excinfo.value)

    def test_disconnection_raises(self, diamond):
        with pytest.raises(PathComputationError) as excinfo:
            constrained_shortest_path(
                diamond, PathRequest("a", "d", min_bandwidth_mbps=1_000, max_delay_ms=100)
            )
        assert "no path" in str(excinfo.value)

    def test_same_node_trivial_path(self, diamond):
        path = constrained_shortest_path(
            diamond, PathRequest("a", "a", min_bandwidth_mbps=10, max_delay_ms=1)
        )
        assert path.link_ids == ()
        assert path.delay_ms == 0.0

    def test_reservations_affect_routing(self, diamond):
        diamond.link("ab").reserve("s1", 45.0, 45.0)
        path = constrained_shortest_path(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=10, max_delay_ms=100)
        )
        assert path.link_ids == ("ac", "cd")

    def test_down_link_avoided(self, diamond):
        diamond.link("bd").fail()
        path = constrained_shortest_path(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=10, max_delay_ms=100)
        )
        assert path.link_ids == ("ac", "cd")

    def test_bad_request_rejected(self):
        with pytest.raises(ValueError):
            PathRequest("a", "b", min_bandwidth_mbps=-1, max_delay_ms=10)
        with pytest.raises(ValueError):
            PathRequest("a", "b", min_bandwidth_mbps=1, max_delay_ms=0)


class TestYen:
    def test_returns_distinct_ranked_paths(self, diamond):
        paths = k_shortest_paths(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=10, max_delay_ms=100), k=3
        )
        assert len(paths) == 2
        assert paths[0].delay_ms <= paths[1].delay_ms
        assert paths[0].link_ids != paths[1].link_ids

    def test_respects_constraints(self, diamond):
        paths = k_shortest_paths(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=100, max_delay_ms=100), k=3
        )
        assert [p.link_ids for p in paths] == [("ac", "cd")]

    def test_no_feasible_returns_empty(self, diamond):
        paths = k_shortest_paths(
            diamond, PathRequest("a", "d", min_bandwidth_mbps=1_000, max_delay_ms=100)
        )
        assert paths == []

    def test_k_one_matches_cspf(self, diamond):
        request = PathRequest("a", "d", min_bandwidth_mbps=10, max_delay_ms=100)
        assert (
            k_shortest_paths(diamond, request, k=1)[0].link_ids
            == constrained_shortest_path(diamond, request).link_ids
        )

    def test_bad_k_rejected(self, diamond):
        with pytest.raises(ValueError):
            k_shortest_paths(
                diamond, PathRequest("a", "d", min_bandwidth_mbps=1, max_delay_ms=10), k=0
            )

    def test_paths_are_loop_free(self):
        t = Topology()
        # Ring with a chord: multiple routes a → d.
        for name, a, b, delay in [
            ("ab", "a", "b", 1),
            ("bc", "b", "c", 1),
            ("cd", "c", "d", 1),
            ("bd", "b", "d", 3),
            ("ad", "a", "d", 10),
        ]:
            t.add_link(Link(name, a, b, capacity_mbps=100, delay_ms=delay))
        paths = k_shortest_paths(
            t, PathRequest("a", "d", min_bandwidth_mbps=1, max_delay_ms=100), k=5
        )
        assert len(paths) == 3
        for path in paths:
            nodes = ["a"] + [t.link(lid).dst for lid in path.link_ids]
            assert len(nodes) == len(set(nodes))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_nodes=st.integers(min_value=3, max_value=8),
    bw=st.floats(min_value=1.0, max_value=80.0),
    delay_bound=st.floats(min_value=1.0, max_value=50.0),
)
def test_property_cspf_results_always_feasible(seed, n_nodes, bw, delay_bound):
    """On random graphs, any path CSPF returns satisfies the request and
    is a valid connected walk."""
    import numpy as np

    rng = np.random.default_rng(seed)
    topo = Topology()
    nodes = [f"n{i}" for i in range(n_nodes)]
    lid = 0
    for i in range(n_nodes):
        for j in range(n_nodes):
            if i != j and rng.random() < 0.5:
                topo.add_link(
                    Link(
                        f"l{lid}",
                        nodes[i],
                        nodes[j],
                        capacity_mbps=float(rng.uniform(10, 100)),
                        delay_ms=float(rng.uniform(0.5, 10)),
                    )
                )
                lid += 1
    for node in nodes:
        topo.add_node(node)
    request = PathRequest(nodes[0], nodes[-1], min_bandwidth_mbps=bw, max_delay_ms=delay_bound)
    try:
        path = constrained_shortest_path(topo, request)
    except PathComputationError:
        return
    topo.validate_path(list(path.link_ids), nodes[0], nodes[-1])
    assert path.delay_ms <= delay_bound + 1e-9
    assert path.bottleneck_mbps >= bw - 1e-9
