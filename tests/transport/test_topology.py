"""Tests for the transport topology graph."""

from __future__ import annotations

import pytest

from repro.transport.links import Link, LinkKind
from repro.transport.topology import Topology, TopologyError


@pytest.fixture
def topo():
    t = Topology()
    t.add_link(Link("ab", "a", "b", capacity_mbps=100, delay_ms=1))
    t.add_link(Link("bc", "b", "c", capacity_mbps=50, delay_ms=2))
    return t


def test_nodes_auto_added(topo):
    assert topo.nodes == {"a", "b", "c"}


def test_duplicate_link_rejected(topo):
    with pytest.raises(TopologyError):
        topo.add_link(Link("ab", "x", "y"))


def test_out_links(topo):
    assert [l.link_id for l in topo.out_links("a")] == ["ab"]
    assert topo.out_links("c") == []


def test_unknown_node_rejected(topo):
    with pytest.raises(TopologyError):
        topo.out_links("ghost")


def test_add_duplex_creates_pair(topo):
    fwd, rev = topo.add_duplex("cd", "c", "d", kind=LinkKind.FIBER)
    assert fwd.src == "c" and fwd.dst == "d"
    assert rev.src == "d" and rev.dst == "c"
    assert topo.link("cd-fwd") is fwd


def test_usable_out_links_filters(topo):
    topo.link("ab").reserve("s1", 60.0, 60.0)
    assert topo.usable_out_links("a", min_residual_mbps=50.0) == []
    assert len(topo.usable_out_links("a", min_residual_mbps=30.0)) == 1
    topo.link("ab").fail()
    assert topo.usable_out_links("a") == []


def test_neighbors(topo):
    assert topo.neighbors("a") == {"b"}
    topo.link("ab").fail()
    assert topo.neighbors("a") == set()


def test_path_metrics(topo):
    assert topo.path_delay_ms(["ab", "bc"]) == pytest.approx(3.0)
    assert topo.path_residual_mbps(["ab", "bc"]) == pytest.approx(50.0)
    assert topo.path_residual_mbps([]) == float("inf")


def test_validate_path(topo):
    topo.validate_path(["ab", "bc"], "a", "c")
    with pytest.raises(TopologyError):
        topo.validate_path(["bc", "ab"], "a", "c")
    with pytest.raises(TopologyError):
        topo.validate_path(["ab"], "a", "c")


def test_utilization_lists_everything(topo):
    snap = topo.utilization()
    assert snap["nodes"] == ["a", "b", "c"]
    assert len(snap["links"]) == 2
