"""Tests for the transport domain controller."""

from __future__ import annotations

import pytest

from repro.transport.controller import TransportController, TransportError
from repro.transport.links import Link
from repro.transport.paths import PathRequest
from repro.transport.switch import OpenFlowSwitch
from repro.transport.topology import Topology


@pytest.fixture
def controller():
    topo = Topology()
    topo.add_link(Link("a-sw", "a", "sw", capacity_mbps=100, delay_ms=1))
    topo.add_link(Link("sw-b", "sw", "b", capacity_mbps=100, delay_ms=1))
    topo.add_link(Link("a-b-slow", "a", "b", capacity_mbps=100, delay_ms=10))
    switch = OpenFlowSwitch("sw", n_ports=8)
    return TransportController(topo, switches=[switch])


def request(bw=10.0, delay=50.0):
    return PathRequest("a", "b", min_bandwidth_mbps=bw, max_delay_ms=delay)


class TestReserve:
    def test_reserves_every_link_and_programs_flows(self, controller):
        allocation = controller.reserve_path("s1", "00101", request())
        assert allocation.path.link_ids == ("a-sw", "sw-b")
        for lid in allocation.path.link_ids:
            assert controller.topology.link(lid).has("s1")
        flows = controller.switch("sw").flows_of("s1")
        assert len(flows) == 1
        assert flows[0].match.plmn_id == "00101"

    def test_duplicate_slice_rejected(self, controller):
        controller.reserve_path("s1", "00101", request())
        with pytest.raises(TransportError):
            controller.reserve_path("s1", "00101", request())

    def test_infeasible_raises(self, controller):
        with pytest.raises(TransportError):
            controller.reserve_path("s1", "00101", request(bw=500.0))

    def test_effective_fraction_shrinks_commitment(self, controller):
        allocation = controller.reserve_path(
            "s1", "00101", request(bw=40.0), effective_fraction=0.5
        )
        assert allocation.effective_mbps == pytest.approx(20.0)
        assert allocation.nominal_mbps == pytest.approx(40.0)
        link = controller.topology.link("a-sw")
        assert link.residual_mbps == pytest.approx(80.0)

    def test_capacity_consumed_forces_reroute(self, controller):
        controller.reserve_path("s1", "00101", request(bw=95.0))
        allocation = controller.reserve_path("s2", "00102", request(bw=50.0))
        assert allocation.path.link_ids == ("a-b-slow",)

    def test_bad_fraction_rejected(self, controller):
        with pytest.raises(TransportError):
            controller.reserve_path("s1", "00101", request(), effective_fraction=1.5)


class TestReleaseResize:
    def test_release_frees_links_and_flows(self, controller):
        controller.reserve_path("s1", "00101", request(bw=40.0))
        controller.release_path("s1")
        assert controller.allocation_of("s1") is None
        assert controller.topology.link("a-sw").residual_mbps == pytest.approx(100.0)
        assert controller.switch("sw").flows_of("s1") == []

    def test_release_unknown_rejected(self, controller):
        with pytest.raises(TransportError):
            controller.release_path("ghost")

    def test_resize(self, controller):
        controller.reserve_path("s1", "00101", request(bw=40.0))
        controller.resize_path("s1", 10.0)
        assert controller.allocation_of("s1").effective_mbps == pytest.approx(10.0)
        assert controller.topology.link("a-sw").residual_mbps == pytest.approx(90.0)

    def test_resize_unknown_rejected(self, controller):
        with pytest.raises(TransportError):
            controller.resize_path("ghost", 5.0)


class TestQueries:
    def test_feasible(self, controller):
        assert controller.feasible(request())
        assert not controller.feasible(request(bw=500.0))

    def test_candidate_paths(self, controller):
        paths = controller.candidate_paths(request(), k=3)
        assert len(paths) == 2

    def test_unknown_switch_rejected(self, controller):
        with pytest.raises(TransportError):
            controller.switch("ghost")

    def test_utilization(self, controller):
        controller.reserve_path("s1", "00101", request(bw=40.0))
        snap = controller.utilization()
        assert snap["domain"] == "transport"
        assert snap["active_paths"] == 1
        assert snap["effective_reserved_mbps"] == pytest.approx(80.0)  # 2 links × 40
