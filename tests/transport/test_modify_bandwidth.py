"""Tests for transport bandwidth re-nomination (incl. rollback paths)."""

from __future__ import annotations

import pytest

from repro.transport.controller import TransportController, TransportError
from repro.transport.links import Link
from repro.transport.paths import PathRequest
from repro.transport.topology import Topology


@pytest.fixture
def controller():
    topo = Topology()
    topo.add_link(Link("a-sw", "a", "sw", capacity_mbps=100, delay_ms=1))
    topo.add_link(Link("sw-b", "sw", "b", capacity_mbps=100, delay_ms=1))
    return TransportController(topo)


def reserve(controller, bw=20.0):
    return controller.reserve_path(
        "s1", "00101", PathRequest("a", "b", min_bandwidth_mbps=bw, max_delay_ms=10.0)
    )


def test_modify_up_and_down(controller):
    reserve(controller, bw=20.0)
    allocation = controller.modify_bandwidth("s1", 60.0)
    assert allocation.nominal_mbps == pytest.approx(60.0)
    assert controller.topology.link("a-sw").residual_mbps == pytest.approx(40.0)
    allocation = controller.modify_bandwidth("s1", 10.0)
    assert controller.topology.link("sw-b").residual_mbps == pytest.approx(90.0)


def test_modify_preserves_stored_request_delay_bound(controller):
    reserve(controller, bw=20.0)
    allocation = controller.modify_bandwidth("s1", 30.0)
    assert allocation.request is not None
    assert allocation.request.max_delay_ms == pytest.approx(10.0)
    assert allocation.request.min_bandwidth_mbps == pytest.approx(30.0)


def test_second_link_failure_rolls_back_first(controller):
    """Grow fits on link 1 but not link 2: link 1 must be restored."""
    reserve(controller, bw=20.0)
    # Squat 70 Mb/s on the second link only: s1 can grow to at most 30 there.
    controller.topology.link("sw-b").reserve("squatter", 70.0, 70.0)
    with pytest.raises(TransportError):
        controller.modify_bandwidth("s1", 40.0)  # fits a-sw, not sw-b
    # Both links still carry the original 20 Mb/s reservation.
    assert controller.topology.link("a-sw").residual_mbps == pytest.approx(80.0)
    assert controller.topology.link("sw-b").residual_mbps == pytest.approx(10.0)
    assert controller.allocation_of("s1").nominal_mbps == pytest.approx(20.0)


def test_modify_effective_fraction(controller):
    reserve(controller, bw=20.0)
    allocation = controller.modify_bandwidth("s1", 40.0, effective_fraction=0.5)
    assert allocation.effective_mbps == pytest.approx(20.0)
    assert controller.topology.link("a-sw").residual_mbps == pytest.approx(80.0)


def test_modify_unknown_slice_rejected(controller):
    with pytest.raises(TransportError):
        controller.modify_bandwidth("ghost", 10.0)


def test_modify_bad_inputs_rejected(controller):
    reserve(controller)
    with pytest.raises(TransportError):
        controller.modify_bandwidth("s1", 0.0)
    with pytest.raises(TransportError):
        controller.modify_bandwidth("s1", 10.0, effective_fraction=1.5)


def test_dashboard_calendar_panel(testbed):
    """The upcoming-bookings panel renders pending advance bookings."""
    from repro.core.orchestrator import Orchestrator
    from repro.dashboard.dashboard import Dashboard
    from repro.sim.engine import Simulator
    from repro.sim.randomness import RandomStreams
    from repro.traffic.patterns import ConstantProfile
    from tests.conftest import make_request

    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=30),
    )
    orch.start()
    dashboard = Dashboard(orch)
    assert dashboard.calendar_panel() == ""  # nothing pending
    request = make_request(duration_s=600.0)
    orch.submit_advance(request, ConstantProfile(20.0, level=0.5), start_time=2_000.0)
    panel = dashboard.calendar_panel()
    assert request.request_id in panel
    assert "Upcoming bookings" in dashboard.render()
    sim.run_until(2_100.0)  # booking installed; no longer "upcoming"
    assert dashboard.calendar_panel() == ""
