"""Driver conformance suite.

The *same* contract tests run against every registered backend — the
four adapters over the simulator controllers and the in-memory mock —
so any future driver (a real SDN controller, an alternate simulator)
has an executable specification: build a ``DriverCase`` for it, add it
to ``CASES``, and the full lifecycle/state-machine surface is covered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import pytest

from repro.cloud.controller import CloudController
from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
from repro.drivers.adapters import CloudDriver, EpcDriver, RanDriver, TransportDriver
from repro.drivers.base import DomainDriver, DomainSpec, DriverError, ReservationState
from repro.drivers.mock import MockDriver
from repro.epc.components import epc_template
from repro.experiments.testbed import build_testbed
from repro.core.slices import PlmnPool

_ids = itertools.count(1)


@dataclass
class DriverCase:
    """One backend under conformance test."""

    name: str
    driver: DomainDriver
    #: Build a *feasible* spec for a fresh slice id (performing any
    #: cross-domain setup the backend needs, e.g. the EPC's stack).
    new_spec: Callable[[], DomainSpec]


def _common(slice_id: str, **overrides) -> dict:
    base = dict(
        slice_id=slice_id,
        tenant_id="tenant-a",
        throughput_mbps=10.0,
        max_latency_ms=50.0,
        duration_s=3_600.0,
        effective_fraction=1.0,
        vcpus=4.0,
    )
    base.update(overrides)
    return base


def _ran_case() -> DriverCase:
    testbed = build_testbed()
    pool = PlmnPool(size=12)
    driver = RanDriver(testbed.ran)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        plmn = pool.allocate(slice_id)
        return DomainSpec(attributes={"plmn": plmn}, **_common(slice_id))

    return DriverCase("ran", driver, new_spec)


def _transport_case() -> DriverCase:
    testbed = build_testbed()
    driver = TransportDriver(testbed.transport)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(
            attributes={
                "src": "enb1-agg",
                "dst": "edge-dc-gw",
                "max_delay_ms": 10.0,
                "plmn_id": "00101",
            },
            **_common(slice_id),
        )

    return DriverCase("transport", driver, new_spec)


def _cloud_case() -> DriverCase:
    dc = Datacenter(
        "edge-dc",
        DatacenterTier.EDGE,
        nodes=[ComputeNode(f"n{i}", vcpus=64) for i in range(2)],
        gateway_node="edge-dc-gw",
        processing_delay_ms=0.5,
    )
    driver = CloudDriver(CloudController([dc]))

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(attributes={"dc_id": "edge-dc"}, **_common(slice_id))

    return DriverCase("cloud", driver, new_spec)


def _epc_case() -> DriverCase:
    dc = Datacenter(
        "edge-dc",
        DatacenterTier.EDGE,
        nodes=[ComputeNode(f"n{i}", vcpus=64) for i in range(4)],
        gateway_node="edge-dc-gw",
        processing_delay_ms=0.5,
    )
    cloud = CloudController([dc])
    driver = EpcDriver(cloud.stack_of)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        # The EPC binds to the slice's (already-deployed) cloud stack.
        if cloud.stack_of(slice_id) is None:
            cloud.deploy(slice_id, epc_template(slice_id), "edge-dc")
        return DomainSpec(attributes={"plmn_id": "00101"}, **_common(slice_id))

    return DriverCase("epc", driver, new_spec)


def _mock_case() -> DriverCase:
    driver = MockDriver(domain="mock", capacity_mbps=100.0)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(**_common(slice_id))

    return DriverCase("mock", driver, new_spec)


CASES = {
    "ran": _ran_case,
    "transport": _transport_case,
    "cloud": _cloud_case,
    "epc": _epc_case,
    "mock": _mock_case,
}


@pytest.fixture(params=sorted(CASES))
def case(request) -> DriverCase:
    return CASES[request.param]()


class TestCapabilities:
    def test_domain_name_matches(self, case):
        caps = case.driver.capabilities()
        assert caps.domain == case.driver.domain == case.name
        assert isinstance(caps.resource_units, tuple)

    def test_utilization_names_domain(self, case):
        util = case.driver.utilization()
        assert util["domain"] == case.name


class TestLifecycle:
    def test_feasible_then_prepare(self, case):
        spec = case.new_spec()
        assert case.driver.feasible(spec)
        reservation = case.driver.prepare(spec)
        assert reservation.state is ReservationState.PREPARED
        assert reservation.domain == case.name
        assert reservation.slice_id == spec.slice_id
        assert case.driver.reservation_of(spec.slice_id) is reservation

    def test_duplicate_prepare_rejected(self, case):
        spec = case.new_spec()
        case.driver.prepare(spec)
        with pytest.raises(DriverError):
            case.driver.prepare(spec)

    def test_commit_then_release(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        assert reservation.state is ReservationState.COMMITTED
        assert case.driver.health(spec.slice_id)["healthy"]
        case.driver.release(spec.slice_id)
        assert reservation.state is ReservationState.RELEASED
        assert case.driver.reservation_of(spec.slice_id) is None
        with pytest.raises(DriverError):
            case.driver.release(spec.slice_id)

    def test_rollback_leaves_no_residue(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.rollback(reservation)
        assert reservation.state is ReservationState.ROLLED_BACK
        assert case.driver.reservation_of(spec.slice_id) is None
        # Zero residue: the same slice can be prepared again.
        again = case.driver.prepare(spec)
        assert again.state is ReservationState.PREPARED
        case.driver.rollback(again)

    def test_state_machine_rejects_out_of_order_transitions(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        with pytest.raises(DriverError):
            case.driver.commit(reservation)  # double commit
        with pytest.raises(DriverError):
            case.driver.rollback(reservation)  # rollback after commit
        case.driver.release(spec.slice_id)

    def test_release_requires_commit(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        with pytest.raises(DriverError):
            case.driver.release(spec.slice_id)
        case.driver.rollback(reservation)

    def test_health_unknown_slice_raises(self, case):
        with pytest.raises(DriverError):
            case.driver.health("slice-never-installed")


class TestResize:
    def test_resize_respects_capability(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        shrunk = DomainSpec(
            attributes=dict(spec.attributes),
            **_common(spec.slice_id, effective_fraction=0.5),
        )
        if case.driver.capabilities().supports_resize:
            resized = case.driver.resize(spec.slice_id, shrunk)
            assert resized.state is ReservationState.COMMITTED
            assert resized.spec.effective_fraction == 0.5
        else:
            with pytest.raises(DriverError):
                case.driver.resize(spec.slice_id, shrunk)
        case.driver.release(spec.slice_id)

    def test_resize_unknown_slice_raises(self, case):
        spec = case.new_spec()
        if not case.driver.capabilities().supports_resize:
            pytest.skip("driver does not support resize")
        with pytest.raises(DriverError):
            case.driver.resize("slice-never-installed", spec)


class TestRepair:
    def test_repair_respects_capability(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        if case.driver.capabilities().supports_repair:
            repaired = case.driver.repair(spec.slice_id)
            assert repaired.slice_id == spec.slice_id
        else:
            with pytest.raises(DriverError):
                case.driver.repair(spec.slice_id)
        case.driver.release(spec.slice_id)
