"""Driver conformance suite.

The *same* contract tests run against every registered backend — the
four adapters over the simulator controllers and the in-memory mock —
so any future driver (a real SDN controller, an alternate simulator)
has an executable specification: build a ``DriverCase`` for it, add it
to ``CASES``, and the full lifecycle/state-machine surface is covered.

The concurrency half of the suite (``TestConcurrency``) interleaves N
worker threads of install/release transactions — with prepare failures
injected via each backend's own refusal path — and asserts the
zero-residue rollback invariant: after quiescence no reservations, no
PRBs, no paths, no flavors are leaked anywhere.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

import pytest

from repro.cloud.controller import CloudController
from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
from repro.drivers.adapters import CloudDriver, EpcDriver, RanDriver, TransportDriver
from repro.drivers.base import (
    DomainDriver,
    DomainSpec,
    DriverError,
    Reservation,
    ReservationState,
)
from repro.drivers.mock import MockDriver
from repro.epc.components import epc_template
from repro.experiments.testbed import build_testbed
from repro.core.slices import PlmnPool

_ids = itertools.count(1)


@dataclass
class DriverCase:
    """One backend under conformance test."""

    name: str
    driver: DomainDriver
    #: Build a *feasible* spec for a fresh slice id (performing any
    #: cross-domain setup the backend needs, e.g. the EPC's stack).
    new_spec: Callable[[], DomainSpec]
    #: Build a spec the backend must *refuse* at prepare time — the
    #: conformance suite's failure injection (None: backend cannot be
    #: made to refuse without external state).
    bad_spec: Optional[Callable[[], DomainSpec]] = None


def _common(slice_id: str, **overrides) -> dict:
    base = dict(
        slice_id=slice_id,
        tenant_id="tenant-a",
        throughput_mbps=10.0,
        max_latency_ms=50.0,
        duration_s=3_600.0,
        effective_fraction=1.0,
        vcpus=4.0,
    )
    base.update(overrides)
    return base


def _ran_case() -> DriverCase:
    testbed = build_testbed()
    pool = PlmnPool(size=32)
    driver = RanDriver(testbed.ran)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        plmn = pool.allocate(slice_id)
        return DomainSpec(attributes={"plmn": plmn}, **_common(slice_id))

    def bad_spec() -> DomainSpec:
        # No cell can host 10 Gb/s worth of PRBs.
        slice_id = f"slice-conf-{next(_ids):04d}"
        plmn = pool.allocate(slice_id)
        return DomainSpec(
            attributes={"plmn": plmn},
            **_common(slice_id, throughput_mbps=10_000.0),
        )

    return DriverCase("ran", driver, new_spec, bad_spec)


def _transport_case() -> DriverCase:
    testbed = build_testbed()
    driver = TransportDriver(testbed.transport)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(
            attributes={
                "src": "enb1-agg",
                "dst": "edge-dc-gw",
                "max_delay_ms": 10.0,
                "plmn_id": "00101",
            },
            **_common(slice_id),
        )

    def bad_spec() -> DomainSpec:
        # No path can carry 1 Tb/s.
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(
            attributes={
                "src": "enb1-agg",
                "dst": "edge-dc-gw",
                "max_delay_ms": 10.0,
                "plmn_id": "00101",
            },
            **_common(slice_id, throughput_mbps=1_000_000.0),
        )

    return DriverCase("transport", driver, new_spec, bad_spec)


def _cloud_case() -> DriverCase:
    dc = Datacenter(
        "edge-dc",
        DatacenterTier.EDGE,
        nodes=[ComputeNode(f"n{i}", vcpus=64) for i in range(2)],
        gateway_node="edge-dc-gw",
        processing_delay_ms=0.5,
    )
    driver = CloudDriver(CloudController([dc]))

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(attributes={"dc_id": "edge-dc"}, **_common(slice_id))

    def bad_spec() -> DomainSpec:
        # Unknown datacenter: deploy must refuse.
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(attributes={"dc_id": "no-such-dc"}, **_common(slice_id))

    return DriverCase("cloud", driver, new_spec, bad_spec)


def _epc_case() -> DriverCase:
    dc = Datacenter(
        "edge-dc",
        DatacenterTier.EDGE,
        nodes=[ComputeNode(f"n{i}", vcpus=64) for i in range(4)],
        gateway_node="edge-dc-gw",
        processing_delay_ms=0.5,
    )
    cloud = CloudController([dc])
    driver = EpcDriver(cloud.stack_of)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        # The EPC binds to the slice's (already-deployed) cloud stack.
        if cloud.stack_of(slice_id) is None:
            cloud.deploy(slice_id, epc_template(slice_id), "edge-dc")
        return DomainSpec(attributes={"plmn_id": "00101"}, **_common(slice_id))

    def bad_spec() -> DomainSpec:
        # No cloud stack deployed for this slice: the bind must refuse.
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(attributes={"plmn_id": "00101"}, **_common(slice_id))

    return DriverCase("epc", driver, new_spec, bad_spec)


def _mock_case() -> DriverCase:
    driver = MockDriver(domain="mock", capacity_mbps=100.0)

    def new_spec() -> DomainSpec:
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(**_common(slice_id))

    def bad_spec() -> DomainSpec:
        # Over the mock's whole capacity pool.
        slice_id = f"slice-conf-{next(_ids):04d}"
        return DomainSpec(**_common(slice_id, throughput_mbps=10_000.0))

    return DriverCase("mock", driver, new_spec, bad_spec)


CASES = {
    "ran": _ran_case,
    "transport": _transport_case,
    "cloud": _cloud_case,
    "epc": _epc_case,
    "mock": _mock_case,
}


@pytest.fixture(params=sorted(CASES))
def case(request) -> DriverCase:
    return CASES[request.param]()


class TestCapabilities:
    def test_domain_name_matches(self, case):
        caps = case.driver.capabilities()
        assert caps.domain == case.driver.domain == case.name
        assert isinstance(caps.resource_units, tuple)

    def test_utilization_names_domain(self, case):
        util = case.driver.utilization()
        assert util["domain"] == case.name


class TestLifecycle:
    def test_feasible_then_prepare(self, case):
        spec = case.new_spec()
        assert case.driver.feasible(spec)
        reservation = case.driver.prepare(spec)
        assert reservation.state is ReservationState.PREPARED
        assert reservation.domain == case.name
        assert reservation.slice_id == spec.slice_id
        assert case.driver.reservation_of(spec.slice_id) is reservation

    def test_duplicate_prepare_rejected(self, case):
        spec = case.new_spec()
        case.driver.prepare(spec)
        with pytest.raises(DriverError):
            case.driver.prepare(spec)

    def test_commit_then_release(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        assert reservation.state is ReservationState.COMMITTED
        assert case.driver.health(spec.slice_id)["healthy"]
        case.driver.release(spec.slice_id)
        assert reservation.state is ReservationState.RELEASED
        assert case.driver.reservation_of(spec.slice_id) is None
        with pytest.raises(DriverError):
            case.driver.release(spec.slice_id)

    def test_rollback_leaves_no_residue(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.rollback(reservation)
        assert reservation.state is ReservationState.ROLLED_BACK
        assert case.driver.reservation_of(spec.slice_id) is None
        # Zero residue: the same slice can be prepared again.
        again = case.driver.prepare(spec)
        assert again.state is ReservationState.PREPARED
        case.driver.rollback(again)

    def test_state_machine_rejects_out_of_order_transitions(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        with pytest.raises(DriverError):
            case.driver.commit(reservation)  # double commit
        with pytest.raises(DriverError):
            case.driver.rollback(reservation)  # rollback after commit
        case.driver.release(spec.slice_id)

    def test_release_requires_commit(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        with pytest.raises(DriverError):
            case.driver.release(spec.slice_id)
        case.driver.rollback(reservation)

    def test_health_unknown_slice_raises(self, case):
        with pytest.raises(DriverError):
            case.driver.health("slice-never-installed")


class TestResize:
    def test_resize_respects_capability(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        shrunk = DomainSpec(
            attributes=dict(spec.attributes),
            **_common(spec.slice_id, effective_fraction=0.5),
        )
        if case.driver.capabilities().supports_resize:
            resized = case.driver.resize(spec.slice_id, shrunk)
            assert resized.state is ReservationState.COMMITTED
            assert resized.spec.effective_fraction == 0.5
        else:
            with pytest.raises(DriverError):
                case.driver.resize(spec.slice_id, shrunk)
        case.driver.release(spec.slice_id)

    def test_resize_unknown_slice_raises(self, case):
        spec = case.new_spec()
        if not case.driver.capabilities().supports_resize:
            pytest.skip("driver does not support resize")
        with pytest.raises(DriverError):
            case.driver.resize("slice-never-installed", spec)


class TestRepair:
    def test_repair_respects_capability(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare(spec)
        case.driver.commit(reservation)
        if case.driver.capabilities().supports_repair:
            repaired = case.driver.repair(spec.slice_id)
            assert repaired.slice_id == spec.slice_id
        else:
            with pytest.raises(DriverError):
                case.driver.repair(spec.slice_id)
        case.driver.release(spec.slice_id)


# ----------------------------------------------------------------------
# Async lifecycle conformance
# ----------------------------------------------------------------------


class TestAsyncLifecycle:
    """The futures-based lifecycle is part of the driver contract: a
    natively asynchronous backend (the mock) and the blocking-shim
    default every adapter inherits must expose the same surface — the
    future resolves to the blocking method's result, and backend errors
    resolve the future instead of raising at the call site."""

    def test_async_install_release_roundtrip(self, case):
        spec = case.new_spec()
        future = case.driver.prepare_async(spec)
        reservation = future.result(timeout=10)
        assert reservation.state is ReservationState.PREPARED
        assert case.driver.reservation_of(spec.slice_id) is reservation
        assert case.driver.commit_async(reservation).result(timeout=10) is None
        assert reservation.state is ReservationState.COMMITTED
        assert case.driver.health(spec.slice_id)["healthy"]
        assert case.driver.release_async(spec.slice_id).result(timeout=10) is None
        assert reservation.state is ReservationState.RELEASED
        assert case.driver.reservation_of(spec.slice_id) is None

    def test_async_rollback_leaves_no_residue(self, case):
        spec = case.new_spec()
        reservation = case.driver.prepare_async(spec).result(timeout=10)
        assert case.driver.rollback_async(reservation).result(timeout=10) is None
        assert reservation.state is ReservationState.ROLLED_BACK
        assert case.driver.reservation_of(spec.slice_id) is None

    def test_async_refusal_resolves_the_future(self, case):
        if case.bad_spec is None:
            pytest.skip("backend has no refusal path to inject")
        future = case.driver.prepare_async(case.bad_spec())
        with pytest.raises(DriverError):
            future.result(timeout=10)
        assert future.done()

    def test_async_release_of_unknown_slice_resolves_the_future(self, case):
        future = case.driver.release_async("slice-never-installed")
        with pytest.raises(DriverError):
            future.result(timeout=10)


def test_mock_cancelled_pending_future_never_touches_backend():
    """True-async backends honour cancellation: a future cancelled
    before its completion timer fires performs no side effects at all
    (this is what makes a timed-out pending operation free to abandon)."""
    import time

    driver = MockDriver(domain="m", prepare_latency_s=0.2)
    future = driver.prepare_async(DomainSpec(slice_id="s0", throughput_mbps=5.0))
    assert future.cancel()
    time.sleep(0.3)  # past the would-be completion
    assert driver.prepares == 0
    assert driver.reservations() == []
    assert driver.held_mbps == 0.0


# ----------------------------------------------------------------------
# Concurrency conformance
# ----------------------------------------------------------------------

N_WORKERS = 4
CYCLES = 3


def _assert_matches(before, after, path="utilization"):
    """Recursive structural equality with float tolerance — the residue
    check: a backend's telemetry must return exactly to its pre-churn
    snapshot (no leaked PRBs, paths, flavors, instances, mbps)."""
    if isinstance(before, dict):
        assert isinstance(after, dict) and set(before) == set(after), path
        for key in before:
            _assert_matches(before[key], after[key], f"{path}.{key}")
    elif isinstance(before, (list, tuple)):
        assert len(before) == len(after), path
        for i, (b, a) in enumerate(zip(before, after)):
            _assert_matches(b, a, f"{path}[{i}]")
    elif isinstance(before, float) or isinstance(after, float):
        assert after == pytest.approx(before, abs=1e-6), path
    else:
        assert before == after, path


def _run_interleaved(driver: DomainDriver, per_worker: List[List]) -> List[Exception]:
    """Drive one lifecycle plan per worker thread, all released together
    from a barrier so the interleaving is real.  Each plan entry is
    ``(spec, action)`` with action in {"install", "rollback", "refuse"}:
    install = prepare→commit→release, rollback = prepare→rollback,
    refuse = a spec the backend must reject at prepare."""
    barrier = threading.Barrier(len(per_worker))
    unexpected: List[Exception] = []

    def worker(plan) -> None:
        try:
            barrier.wait(timeout=10)
            for spec, action in plan:
                if action == "refuse":
                    with pytest.raises(DriverError):
                        driver.prepare(spec)
                    continue
                reservation = driver.prepare(spec)
                if action == "rollback":
                    driver.rollback(reservation)
                    continue
                try:
                    driver.commit(reservation)
                except DriverError:
                    # Injected commit failure: the unwind discipline says
                    # roll the still-PREPARED reservation back.
                    driver.rollback(reservation)
                    continue
                driver.release(spec.slice_id)
        except Exception as exc:  # pragma: no cover - the assertion payload
            unexpected.append(exc)

    threads = [
        threading.Thread(target=worker, args=(plan,), name=f"conf-worker-{i}")
        for i, plan in enumerate(per_worker)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "worker deadlocked"
    return unexpected


class TestConcurrency:
    """N interleaved install/release transactions + injected failures:
    the zero-residue invariant must hold for every backend."""

    def test_interleaved_install_release_leaves_zero_residue(self, case):
        specs = [case.new_spec() for _ in range(N_WORKERS * CYCLES)]
        before = case.driver.utilization()
        plans = []
        for w in range(N_WORKERS):
            plan = []
            for i, spec in enumerate(specs[w::N_WORKERS]):
                plan.append((spec, "rollback" if i % 3 == 1 else "install"))
            plans.append(plan)
        unexpected = _run_interleaved(case.driver, plans)
        assert not unexpected, unexpected
        assert case.driver.reservations() == []
        _assert_matches(before, case.driver.utilization())

    def test_injected_prepare_failures_leave_zero_residue(self, case):
        if case.bad_spec is None:
            pytest.skip("backend has no refusal path to inject")
        good = [case.new_spec() for _ in range(N_WORKERS * 2)]
        bad = [case.bad_spec() for _ in range(N_WORKERS)]
        before = case.driver.utilization()
        plans = []
        for w in range(N_WORKERS):
            plans.append(
                [
                    (good[2 * w], "install"),
                    (bad[w], "refuse"),
                    (good[2 * w + 1], "install"),
                ]
            )
        unexpected = _run_interleaved(case.driver, plans)
        assert not unexpected, unexpected
        assert case.driver.reservations() == []
        _assert_matches(before, case.driver.utilization())

    def test_injected_commit_failures_leave_zero_residue(self, case):
        """Commit-time failure injection is a MockDriver knob; adapters
        never fail commit (prepare did the work), so for them this runs
        as a plain interleaved install storm — the invariant must hold
        either way."""
        specs = [case.new_spec() for _ in range(N_WORKERS * 2)]
        if isinstance(case.driver, MockDriver):
            case.driver.fail_next_commit = 3
        before_reservations = len(case.driver.reservations())
        plans = [
            [(spec, "install") for spec in specs[w::N_WORKERS]]
            for w in range(N_WORKERS)
        ]
        unexpected = _run_interleaved(case.driver, plans)
        assert not unexpected, unexpected
        assert len(case.driver.reservations()) == before_reservations
        if isinstance(case.driver, MockDriver):
            assert case.driver.held_mbps == pytest.approx(0.0)

    def test_concurrent_duplicate_prepare_single_winner(self, case):
        """Two threads racing to prepare the *same* slice: exactly one
        reservation may exist afterwards (no double-hold)."""
        spec = case.new_spec()
        barrier = threading.Barrier(2)
        outcomes: List[object] = []

        def racer() -> None:
            try:
                barrier.wait(timeout=10)
                outcomes.append(case.driver.prepare(spec))
            except DriverError as exc:
                outcomes.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        wins = [o for o in outcomes if isinstance(o, Reservation)]
        assert len(wins) == 1, outcomes
        assert case.driver.reservation_of(spec.slice_id) is wins[0]
        case.driver.rollback(wins[0])
        assert case.driver.reservations() == []
