"""Tests for the concurrent batch install planner.

The planner is the fleet-scale install engine: batches of install jobs
run concurrently over the driver registry, prepares fan out in
dependency waves under per-driver concurrency caps, and the two-phase
reverse-order unwind discipline must hold no matter how jobs
interleave.  The :class:`~repro.drivers.mock.MockDriver` provides the
thread-safe backend plus prepare/commit/release failure injection.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import pytest

from repro.drivers.base import DomainSpec, ReservationState
from repro.drivers.mock import MockDriver
from repro.drivers.planner import (
    BatchInstallPlanner,
    InstallJob,
    ThreadedInstallPlanner,
)
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import OperationTimeout


DOMAINS = ("alpha", "beta", "gamma")


def make_registry(capacity_mbps: float = 1_000.0, **mock_kwargs) -> DriverRegistry:
    return DriverRegistry(
        [
            MockDriver(domain=d, capacity_mbps=capacity_mbps, **mock_kwargs)
            for d in DOMAINS
        ]
    )


def spec_map(slice_id: str, mbps: float = 10.0) -> Dict[str, DomainSpec]:
    return {
        d: DomainSpec(slice_id=slice_id, throughput_mbps=mbps) for d in DOMAINS
    }


def job_for(slice_id: str, mbps: float = 10.0, attempts: int = 1) -> InstallJob:
    return InstallJob(
        slice_id=slice_id,
        attempts=[spec_map(slice_id, mbps) for _ in range(attempts)],
    )


def committed_mbps(driver: MockDriver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.reservations()
        if r.state is ReservationState.COMMITTED
    )


def assert_zero_residue(registry: DriverRegistry) -> None:
    """The global conservation invariant: what a backend physically
    holds equals exactly the sum of its COMMITTED reservations, and no
    reservation is stranded mid-lifecycle."""
    for driver in registry:
        for reservation in driver.reservations():
            assert reservation.state is ReservationState.COMMITTED
        assert driver.held_mbps == pytest.approx(committed_mbps(driver))


class TestPlanning:
    def test_plan_groups_jobs_into_bounded_batches(self):
        planner = BatchInstallPlanner(make_registry(), batch_size=4)
        jobs = [job_for(f"s{i}") for i in range(10)]
        batches = planner.plan(jobs)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [j.slice_id for b in batches for j in b] == [j.slice_id for j in jobs]

    def test_prepare_waves_respect_declared_dependencies(self):
        registry = DriverRegistry(
            [
                MockDriver(domain="ran"),
                MockDriver(domain="cloud"),
                MockDriver(domain="epc", prepare_after=("cloud",)),
            ]
        )
        planner = BatchInstallPlanner(registry)
        waves = planner.prepare_waves(registry.domains())
        assert waves == [["ran", "cloud"], ["epc"]]

    def test_prepare_waves_ignore_absent_dependencies(self):
        registry = DriverRegistry(
            [MockDriver(domain="epc", prepare_after=("cloud",))]
        )
        planner = BatchInstallPlanner(registry)
        assert planner.prepare_waves(["epc"]) == [["epc"]]

    def test_dependency_cycle_degrades_to_serial_order(self):
        registry = DriverRegistry(
            [
                MockDriver(domain="a", prepare_after=("b",)),
                MockDriver(domain="b", prepare_after=("a",)),
            ]
        )
        planner = BatchInstallPlanner(registry)
        waves = planner.prepare_waves(["a", "b"])
        assert waves == [["a"], ["b"]]


class TestBatchInstall:
    def test_batch_commits_every_domain(self):
        registry = make_registry()
        planner = BatchInstallPlanner(registry, max_workers=4)
        outcomes = planner.install([job_for(f"s{i}") for i in range(6)])
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert set(outcome.reservations) == set(DOMAINS)
            for reservation in outcome.reservations.values():
                assert reservation.state is ReservationState.COMMITTED
        for driver in registry:
            assert driver.held_mbps == pytest.approx(60.0)
        assert_zero_residue(registry)
        assert planner.jobs_installed == 6
        assert planner.jobs_failed == 0

    def test_outcomes_keep_submission_order(self):
        planner = BatchInstallPlanner(make_registry(), max_workers=4, batch_size=2)
        jobs = [job_for(f"s{i}") for i in range(5)]
        outcomes = planner.install(jobs)
        assert [o.job.slice_id for o in outcomes] == [j.slice_id for j in jobs]

    def test_spec_domain_mismatch_fails_before_preparing(self):
        registry = make_registry()
        planner = BatchInstallPlanner(registry)
        bad = InstallJob(slice_id="s0", attempts=[{"alpha": DomainSpec(slice_id="s0")}])
        (outcome,) = planner.install([bad])
        assert not outcome.ok
        assert "mismatch" in str(outcome.error)
        for driver in registry:
            assert driver.prepares == 0

    def test_job_with_no_attempts_fails_cleanly(self):
        planner = BatchInstallPlanner(make_registry())
        (outcome,) = planner.install([InstallJob(slice_id="s0", attempts=[])])
        assert not outcome.ok
        assert "no install attempts" in str(outcome.error)


class TestUnwindDiscipline:
    def test_prepare_failure_unwinds_only_that_job(self):
        registry = make_registry()
        registry.get("gamma").fail_next_prepare = 1
        planner = BatchInstallPlanner(registry, max_workers=1)  # deterministic victim
        outcomes = planner.install([job_for("s0"), job_for("s1")])
        assert [o.ok for o in outcomes] == [False, True]
        assert_zero_residue(registry)
        # The survivor holds in every domain; the victim holds nowhere.
        for driver in registry:
            assert {r.slice_id for r in driver.reservations()} == {"s1"}

    def test_commit_failure_releases_committed_and_rolls_back_prepared(self):
        registry = make_registry()
        # beta commits after alpha in registry order: alpha is COMMITTED
        # when beta's commit fails, gamma is still PREPARED.
        registry.get("beta").fail_next_commit = 1
        planner = BatchInstallPlanner(registry, max_workers=1)
        (outcome,) = planner.install([job_for("s0")])
        assert not outcome.ok
        assert_zero_residue(registry)
        alpha, beta, gamma = (registry.get(d) for d in DOMAINS)
        assert alpha.releases == 1  # committed → released
        assert gamma.rollbacks == 1  # still prepared → rolled back
        # Reverse order: gamma unwinds before alpha (recorded rollbacks).
        unwound = [domain for domain, _, _ in outcome.rollbacks]
        assert unwound.index("gamma") < unwound.index("alpha")

    def test_validate_failure_unwinds_everything(self):
        from repro.drivers.base import DriverError

        registry = make_registry()
        planner = BatchInstallPlanner(registry)

        def veto(reservations):
            raise DriverError("validator", "cross-domain check failed")

        job = InstallJob(slice_id="s0", attempts=[spec_map("s0")], validate=veto)
        (outcome,) = planner.install([job])
        assert not outcome.ok
        assert "cross-domain check failed" in str(outcome.error)
        assert_zero_residue(registry)
        for driver in registry:
            assert driver.reservations() == []

    def test_second_attempt_succeeds_and_hides_first_attempt_rollbacks(self):
        fired: List[tuple] = []
        registry = make_registry()
        registry.get("beta").fail_next_prepare = 1
        planner = BatchInstallPlanner(
            registry, max_workers=1, on_rollback=lambda *a: fired.append(a)
        )
        (outcome,) = planner.install([job_for("s0", attempts=2)])
        assert outcome.ok
        # First attempt's unwind was buffered but never surfaced.
        assert fired == []
        assert outcome.rollbacks  # the buffer does record the retry
        assert_zero_residue(registry)

    def test_rollback_hook_fires_for_failed_jobs_only(self):
        fired: List[tuple] = []
        registry = make_registry()
        registry.get("gamma").fail_next_prepare = 1
        planner = BatchInstallPlanner(
            registry, max_workers=1, on_rollback=lambda *a: fired.append(a)
        )
        outcomes = planner.install([job_for("s0"), job_for("s1")])
        assert [o.ok for o in outcomes] == [False, True]
        assert fired  # the failed job surfaced its unwinds
        assert {r.slice_id for _, r, _ in fired} == {"s0"}


class TestConcurrencyCaps:
    def test_per_driver_semaphore_bounds_inflight_prepares(self):
        class Probe(MockDriver):
            def __init__(self):
                super().__init__(domain="probe", max_concurrent_installs=2)
                self.inflight = 0
                self.max_inflight = 0
                self._gauge = threading.Lock()

            def _do_prepare(self, spec):
                with self._gauge:
                    self.inflight += 1
                    self.max_inflight = max(self.max_inflight, self.inflight)
                try:
                    import time

                    time.sleep(0.002)
                    return super()._do_prepare(spec)
                finally:
                    with self._gauge:
                        self.inflight -= 1

        probe = Probe()
        registry = DriverRegistry([probe])
        planner = BatchInstallPlanner(registry, max_workers=8)
        outcomes = planner.install(
            [
                InstallJob(slice_id=f"s{i}", attempts=[{"probe": DomainSpec(slice_id=f"s{i}")}])
                for i in range(12)
            ]
        )
        assert all(o.ok for o in outcomes)
        assert probe.max_inflight <= 2

    def test_both_engines_install_identically(self):
        """The threaded baseline and the async engine implement the
        same contract: same jobs, same registry shape, same outcomes."""
        for planner_cls in (BatchInstallPlanner, ThreadedInstallPlanner):
            registry = make_registry()
            planner = planner_cls(registry, max_workers=4)
            outcomes = planner.install([job_for(f"s{i}") for i in range(6)])
            assert all(o.ok for o in outcomes), planner_cls.__name__
            assert_zero_residue(registry)
            assert planner.jobs_installed == 6

    def test_interleaved_batches_keep_invariant_under_failure_injection(self):
        """Two planners hammer the same registry from two threads with
        failures injected everywhere; after quiescence the conservation
        invariant holds and no reservation is stranded."""
        registry = make_registry(capacity_mbps=10_000.0)
        for driver in registry:
            driver.fail_next_prepare = 3
            driver.fail_next_commit = 2
        planners = [
            BatchInstallPlanner(registry, max_workers=4, batch_size=8)
            for _ in range(2)
        ]
        results: List[List] = [[], []]
        errors: List[Exception] = []

        def run(which: int) -> None:
            try:
                jobs = [job_for(f"p{which}-s{i}") for i in range(16)]
                results[which] = planners[which].install(jobs)
            except Exception as exc:  # pragma: no cover - must not happen
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(w,)) for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        outcomes = results[0] + results[1]
        assert len(outcomes) == 32
        assert_zero_residue(registry)
        # Failed jobs hold nothing anywhere; successful ones everywhere.
        for outcome in outcomes:
            held_in = {
                d.domain
                for d in registry
                if any(r.slice_id == outcome.job.slice_id for r in d.reservations())
            }
            assert held_in == (set(DOMAINS) if outcome.ok else set())


class TestStallIsolation:
    """One hung southbound domain must not stall the batch: the job
    that hit it times out and unwinds cleanly, every other job commits
    in its own latency, and the straggling operation is compensated in
    the background once the backend comes back."""

    TIMEOUT_S = 0.25

    def _registry(self) -> DriverRegistry:
        return DriverRegistry(
            [
                MockDriver(
                    domain=d,
                    capacity_mbps=10_000.0,
                    max_concurrent_installs=8,
                    prepare_latency_s=0.005,
                    commit_latency_s=0.001,
                )
                for d in DOMAINS
            ]
        )

    @staticmethod
    def _wait_for(predicate, timeout_s: float = 5.0) -> bool:
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_stalled_job_times_out_while_healthy_jobs_commit(self):
        registry = self._registry()
        stalled_driver = registry.get("beta")
        stalled_driver.stall()  # next beta operation hangs
        planner = BatchInstallPlanner(
            registry, max_workers=16, operation_timeout_s=self.TIMEOUT_S
        )
        jobs = [job_for(f"s{i}") for i in range(16)]
        start = time.perf_counter()
        outcomes = planner.install(jobs)
        elapsed = time.perf_counter() - start
        try:
            failed = [o for o in outcomes if not o.ok]
            healthy = [o for o in outcomes if o.ok]
            # Exactly the job that hit the stall failed — with a timeout.
            assert len(failed) == 1 and len(healthy) == 15
            assert isinstance(failed[0].error, OperationTimeout)
            assert "timed out" in str(failed[0].error)
            assert planner.ops_timed_out == 1
            # The batch settled at ~the deadline, not at stall release
            # (which has not happened yet) — the 15 healthy jobs never
            # waited on the hung domain.
            assert elapsed < 3.0, f"batch took {elapsed:.2f}s under one stall"
            assert stalled_driver.stalled_ops == 1
        finally:
            stalled_driver.release_stall()
        # The straggler completes after release and is compensated:
        # eventually the failed job holds nothing anywhere.
        failed_id = failed[0].job.slice_id
        assert self._wait_for(
            lambda: all(
                r.slice_id != failed_id
                for driver in registry
                for r in driver.reservations()
            )
        ), "late completion of the stalled operation was not compensated"
        assert_zero_residue(registry)
        # Healthy jobs still hold everywhere.
        for driver in registry:
            assert {r.slice_id for r in driver.reservations()} == {
                o.job.slice_id for o in healthy
            }

    def test_threaded_baseline_parks_on_stall_async_engine_does_not(self):
        """The regression the async rewrite fixes: the thread-pool
        engine cannot settle a batch before a hung blocking call
        returns; the event-driven engine settles at the deadline."""
        release_after_s = 0.5

        def run(planner_cls):
            registry = self._registry()
            stalled_driver = registry.get("beta")
            stalled_driver.stall()
            releaser = threading.Timer(release_after_s, stalled_driver.release_stall)
            releaser.daemon = True
            releaser.start()
            planner = planner_cls(
                registry, max_workers=8, operation_timeout_s=0.1
            )
            start = time.perf_counter()
            outcomes = planner.install([job_for(f"s{i}") for i in range(8)])
            elapsed = time.perf_counter() - start
            releaser.cancel()
            stalled_driver.release_stall()
            return elapsed, outcomes

        async_elapsed, async_outcomes = run(BatchInstallPlanner)
        threaded_elapsed, threaded_outcomes = run(ThreadedInstallPlanner)
        # Threaded: the parked worker holds the batch until the stall
        # releases (then every job commits).  Async: the batch settles
        # at the deadline, healthy jobs long since committed.
        assert threaded_elapsed >= release_after_s - 0.05
        assert async_elapsed < threaded_elapsed
        assert all(o.ok for o in threaded_outcomes)
        assert sum(o.ok for o in async_outcomes) == 7
        assert sum(isinstance(o.error, OperationTimeout)
                   for o in async_outcomes if not o.ok) == 1

    def test_deadline_covers_token_queueing_on_serial_driver(self):
        """The deadline clock starts at submission, not at token grant:
        on a cap-1 (serial) driver, jobs queued behind a hung operation
        time out too instead of wedging the whole batch — the regression
        the real adapters (all serial) would otherwise hit."""
        registry = DriverRegistry(
            [MockDriver(domain="serial", capacity_mbps=1e9,
                        max_concurrent_installs=1)]
        )
        driver = registry.get("serial")
        driver.stall()
        planner = BatchInstallPlanner(
            registry, max_workers=8, operation_timeout_s=0.15
        )
        jobs = [
            InstallJob(
                slice_id=f"s{i}",
                attempts=[{"serial": DomainSpec(slice_id=f"s{i}",
                                                throughput_mbps=1.0)}],
            )
            for i in range(4)
        ]
        start = time.perf_counter()
        outcomes = planner.install(jobs)
        elapsed = time.perf_counter() - start
        try:
            assert all(not o.ok for o in outcomes)
            assert all(isinstance(o.error, OperationTimeout) for o in outcomes)
            assert planner.ops_timed_out == 4
            assert elapsed < 3.0, f"queued jobs wedged for {elapsed:.2f}s"
        finally:
            driver.release_stall()
        # Only the op that actually held the token launched; its late
        # completion is compensated, the queued ones never ran.
        assert self._wait_for(
            lambda: all(not d.reservations() for d in registry)
        )
        assert driver.prepares <= 1

    def test_timeout_fails_the_job_without_retrying_attempts(self):
        """A hung domain fails the *job*, not just the attempt: further
        candidate-DC attempts would hammer the hung backend and trip
        the per-slice in-flight guard while the straggler is still out,
        masking the timeout behind a confusing refusal."""
        registry = self._registry()
        stalled_driver = registry.get("beta")
        stalled_driver.stall()
        planner = BatchInstallPlanner(registry, operation_timeout_s=0.15)
        (outcome,) = planner.install([job_for("s0", attempts=3)])
        try:
            assert not outcome.ok
            assert isinstance(outcome.error, OperationTimeout)
            # Attempts 2 and 3 never ran: the straggler is still parked
            # (its counter bumps only past the stall gate) and no other
            # beta prepare was issued.
            assert stalled_driver.prepares == 0
            assert registry.get("alpha").prepares == 1
        finally:
            stalled_driver.release_stall()
        assert self._wait_for(
            lambda: all(
                not driver.reservations() for driver in registry
            )
        )

    def test_hung_rollback_during_unwind_does_not_block_settlement(self):
        """The unwind chain is deadline-covered too: a backend that
        hangs *during rollback* costs the job its deadline, not the
        batch its liveness — and the late rollback, being itself the
        compensation, still lands once the backend returns."""
        registry = self._registry()
        registry.get("gamma").fail_next_prepare = 1  # forces an unwind
        hung = registry.get("beta")
        hung.stall(kinds=("rollback",))  # forward path runs; unwind hangs
        planner = BatchInstallPlanner(registry, operation_timeout_s=0.15)
        start = time.perf_counter()
        (outcome,) = planner.install([job_for("s0")])
        elapsed = time.perf_counter() - start
        try:
            assert not outcome.ok
            assert "unwind also failed" in str(outcome.error)
            assert "timed out" in str(outcome.error)
            assert elapsed < 3.0, f"hung rollback held the batch {elapsed:.2f}s"
            # alpha's compensation landed on time; beta's is parked.
            assert registry.get("alpha").rollbacks == 1
        finally:
            hung.release_stall()
        # The parked rollback completes after release — it *is* the
        # compensation, so the residue clears without further action.
        assert self._wait_for(
            lambda: all(not driver.reservations() for driver in registry)
        )
        assert hung.held_mbps == 0.0

    def test_timed_out_pending_operation_is_cancelled_without_side_effects(self):
        """A deadline shorter than the emulated latency cancels the
        still-pending future: the backend is never touched, so there is
        nothing to compensate."""
        registry = DriverRegistry(
            [
                MockDriver(
                    domain="slow",
                    capacity_mbps=1_000.0,
                    prepare_latency_s=0.5,
                )
            ]
        )
        planner = BatchInstallPlanner(registry, operation_timeout_s=0.05)
        job = InstallJob(
            slice_id="s0", attempts=[{"slow": DomainSpec(slice_id="s0")}]
        )
        (outcome,) = planner.install([job])
        assert not outcome.ok
        assert isinstance(outcome.error, OperationTimeout)
        driver = registry.get("slow")
        time.sleep(0.6)  # past the would-be completion
        assert driver.prepares == 0
        assert driver.reservations() == []
        assert planner.ops_compensated == 0


class TestDurabilityHooks:
    """The planner's durability surface: per-reservation audit records
    (``on_record``) and the buffered northbound incidents
    (``drain_events``) the orchestrator surfaces on its event feed."""

    def test_on_record_sees_prepare_and_commit_of_every_domain(self):
        registry = make_registry()
        records: List[tuple] = []
        lock = threading.Lock()

        def recorder(kind, domain, slice_id, reservation_id):
            with lock:
                records.append((kind, domain, slice_id))

        planner = BatchInstallPlanner(registry, on_record=recorder)
        outcomes = planner.install([job_for("s1"), job_for("s2")])
        assert all(o.ok for o in outcomes)
        for slice_id in ("s1", "s2"):
            for domain in DOMAINS:
                assert ("driver.prepared", domain, slice_id) in records
                assert ("driver.committed", domain, slice_id) in records

    def test_on_record_sees_the_unwind(self):
        registry = make_registry()
        registry.get("gamma").fail_next_prepare = 1
        records: List[tuple] = []
        lock = threading.Lock()
        planner = BatchInstallPlanner(
            registry,
            on_record=lambda kind, domain, sid, rid: (
                lock.acquire(), records.append((kind, domain, sid)), lock.release()
            ),
        )
        (outcome,) = planner.install([job_for("s-fail")])
        assert not outcome.ok
        unwound = [(k, d) for k, d, sid in records if k == "driver.rolled_back"]
        assert set(unwound) == {
            ("driver.rolled_back", "alpha"),
            ("driver.rolled_back", "beta"),
        }

    def test_raising_recorder_never_fails_the_install(self):
        registry = make_registry()

        def broken(*args):
            raise RuntimeError("journal on fire")

        planner = BatchInstallPlanner(registry, on_record=broken)
        (outcome,) = planner.install([job_for("s-audit")])
        assert outcome.ok

    def test_timeout_and_compensation_buffered_as_events(self):
        registry = make_registry(max_concurrent_installs=8)
        stalled = registry.get("beta")
        stalled.stall()
        planner = BatchInstallPlanner(registry, operation_timeout_s=0.15)
        (outcome,) = planner.install([job_for("s-hang")])
        assert not outcome.ok
        drained = planner.drain_events()
        kinds = [k for k, _ in drained]
        assert "driver.op_timeout" in kinds
        payload = dict(drained)[("driver.op_timeout")]
        assert payload["domain"] == "beta"
        assert payload["slice_id"] == "s-hang"
        # The straggler completes and is compensated in the background.
        stalled.release_stall()
        deadline = time.time() + 5.0
        while time.time() < deadline and planner.ops_compensated == 0:
            time.sleep(0.01)
        assert planner.ops_compensated == 1
        late = planner.drain_events()
        assert ("driver.compensated", {
            "domain": "beta", "kind": "prepare", "slice_id": "s-hang",
        }) in late
        # Draining clears the buffer.
        assert planner.drain_events() == []


class TestObservability:
    """Span propagation through the async engine: the job's carried
    SpanContext must pin every southbound op span to the right parent
    no matter which completion/timer thread closes it, and a timed-out
    op must close its span as an error rather than leak it."""

    def _obs(self):
        from repro.obs.registry import ControlPlaneObservability

        return ControlPlaneObservability()

    def _registry(self) -> DriverRegistry:
        return DriverRegistry(
            [
                MockDriver(
                    domain=d,
                    capacity_mbps=10_000.0,
                    max_concurrent_installs=8,
                    prepare_latency_s=0.003,
                    commit_latency_s=0.001,
                )
                for d in DOMAINS
            ]
        )

    def test_op_spans_parent_to_their_job_across_completion_threads(self):
        obs = self._obs()
        planner = BatchInstallPlanner(self._registry(), max_workers=8, obs=obs)
        root = obs.span("install.batch")
        job_spans = {}
        jobs = []
        for i in range(8):
            slice_id = f"s{i}"
            job_span = obs.span("install.job", parent=root.context)
            job_spans[slice_id] = job_span
            jobs.append(
                InstallJob(
                    slice_id=slice_id,
                    attempts=[spec_map(slice_id)],
                    span_context=job_span.context,
                )
            )
        outcomes = planner.install(jobs)
        assert all(o.ok for o in outcomes)
        for span in job_spans.values():
            span.finish()
        root.finish()

        (trace,) = obs.traces()
        job_ids = {
            s["span_id"]: None for s in trace["spans"] if s["name"] == "install.job"
        }
        ops = [s for s in trace["spans"] if s["name"].startswith("driver.")]
        # Every job ran prepare+commit in all three domains, and every
        # op span — closed on whichever worker thread settled it —
        # parents to one of the job spans, never to the root directly.
        assert len(ops) == 8 * len(DOMAINS) * 2
        assert all(op["parent_id"] in job_ids for op in ops)
        assert all(op["status"] == "ok" for op in ops)
        assert obs.tracer.active_span_count == 0

    def test_op_spans_feed_per_domain_histograms(self):
        obs = self._obs()
        planner = BatchInstallPlanner(self._registry(), max_workers=8, obs=obs)
        outcomes = planner.install([job_for(f"s{i}") for i in range(4)])
        assert all(o.ok for o in outcomes)
        for domain in DOMAINS:
            prepare = obs.histogram("driver.prepare", domain)
            assert prepare.count == 4
            # The emulated southbound latency is visible in the data.
            assert prepare.max_ms >= 1.0
        # One token wait per southbound op (prepare + commit).
        assert obs.histogram("planner.token_wait", "alpha").count == 8

    def test_timed_out_op_span_closes_as_error_and_does_not_leak(self):
        obs = self._obs()
        registry = self._registry()
        stalled = registry.get("beta")
        stalled.stall()
        planner = BatchInstallPlanner(
            registry, max_workers=8, operation_timeout_s=0.15, obs=obs
        )
        root = obs.span("install.batch")
        job_span = obs.span("install.job", parent=root.context)
        job = InstallJob(
            slice_id="s-hang",
            attempts=[spec_map("s-hang")],
            span_context=job_span.context,
        )
        try:
            (outcome,) = planner.install([job])
            assert not outcome.ok
            job_span.finish("error", error=str(outcome.error))
            root.finish()
            # The deadline timer closed the hung op's span as an error
            # *at the deadline* — no span waits for the backend.
            (trace,) = obs.traces()
            errored = [
                s
                for s in trace["spans"]
                if s["name"].startswith("driver.") and s["status"] == "error"
            ]
            assert errored, "timed-out operation left no errored span"
            assert any("timed out" in (s["error"] or "") for s in errored)
            assert obs.tracer.active_span_count == 0
        finally:
            stalled.release_stall()
        # Late completion is compensated in the background; the span
        # bookkeeping must stay settled (finish is idempotent).
        deadline = time.time() + 5.0
        while time.time() < deadline and planner.ops_compensated == 0:
            time.sleep(0.01)
        assert obs.tracer.active_span_count == 0

    def test_disabled_observability_keeps_engine_behavior(self):
        from repro.obs.registry import NOOP_OBS

        planner = BatchInstallPlanner(self._registry(), max_workers=8, obs=NOOP_OBS)
        outcomes = planner.install([job_for(f"s{i}") for i in range(4)])
        assert all(o.ok for o in outcomes)
        assert NOOP_OBS.traces() == []
