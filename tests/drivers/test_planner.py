"""Tests for the concurrent batch install planner.

The planner is the fleet-scale install engine: batches of install jobs
run concurrently over the driver registry, prepares fan out in
dependency waves under per-driver concurrency caps, and the two-phase
reverse-order unwind discipline must hold no matter how jobs
interleave.  The :class:`~repro.drivers.mock.MockDriver` provides the
thread-safe backend plus prepare/commit/release failure injection.
"""

from __future__ import annotations

import threading
from typing import Dict, List

import pytest

from repro.drivers.base import DomainSpec, ReservationState
from repro.drivers.mock import MockDriver
from repro.drivers.planner import BatchInstallPlanner, InstallJob
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import TransactionError


DOMAINS = ("alpha", "beta", "gamma")


def make_registry(capacity_mbps: float = 1_000.0, **mock_kwargs) -> DriverRegistry:
    return DriverRegistry(
        [
            MockDriver(domain=d, capacity_mbps=capacity_mbps, **mock_kwargs)
            for d in DOMAINS
        ]
    )


def spec_map(slice_id: str, mbps: float = 10.0) -> Dict[str, DomainSpec]:
    return {
        d: DomainSpec(slice_id=slice_id, throughput_mbps=mbps) for d in DOMAINS
    }


def job_for(slice_id: str, mbps: float = 10.0, attempts: int = 1) -> InstallJob:
    return InstallJob(
        slice_id=slice_id,
        attempts=[spec_map(slice_id, mbps) for _ in range(attempts)],
    )


def committed_mbps(driver: MockDriver) -> float:
    return sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in driver.reservations()
        if r.state is ReservationState.COMMITTED
    )


def assert_zero_residue(registry: DriverRegistry) -> None:
    """The global conservation invariant: what a backend physically
    holds equals exactly the sum of its COMMITTED reservations, and no
    reservation is stranded mid-lifecycle."""
    for driver in registry:
        for reservation in driver.reservations():
            assert reservation.state is ReservationState.COMMITTED
        assert driver.held_mbps == pytest.approx(committed_mbps(driver))


class TestPlanning:
    def test_plan_groups_jobs_into_bounded_batches(self):
        planner = BatchInstallPlanner(make_registry(), batch_size=4)
        jobs = [job_for(f"s{i}") for i in range(10)]
        batches = planner.plan(jobs)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [j.slice_id for b in batches for j in b] == [j.slice_id for j in jobs]

    def test_prepare_waves_respect_declared_dependencies(self):
        registry = DriverRegistry(
            [
                MockDriver(domain="ran"),
                MockDriver(domain="cloud"),
                MockDriver(domain="epc", prepare_after=("cloud",)),
            ]
        )
        planner = BatchInstallPlanner(registry)
        waves = planner.prepare_waves(registry.domains())
        assert waves == [["ran", "cloud"], ["epc"]]

    def test_prepare_waves_ignore_absent_dependencies(self):
        registry = DriverRegistry(
            [MockDriver(domain="epc", prepare_after=("cloud",))]
        )
        planner = BatchInstallPlanner(registry)
        assert planner.prepare_waves(["epc"]) == [["epc"]]

    def test_dependency_cycle_degrades_to_serial_order(self):
        registry = DriverRegistry(
            [
                MockDriver(domain="a", prepare_after=("b",)),
                MockDriver(domain="b", prepare_after=("a",)),
            ]
        )
        planner = BatchInstallPlanner(registry)
        waves = planner.prepare_waves(["a", "b"])
        assert waves == [["a"], ["b"]]


class TestBatchInstall:
    def test_batch_commits_every_domain(self):
        registry = make_registry()
        planner = BatchInstallPlanner(registry, max_workers=4)
        outcomes = planner.install([job_for(f"s{i}") for i in range(6)])
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert set(outcome.reservations) == set(DOMAINS)
            for reservation in outcome.reservations.values():
                assert reservation.state is ReservationState.COMMITTED
        for driver in registry:
            assert driver.held_mbps == pytest.approx(60.0)
        assert_zero_residue(registry)
        assert planner.jobs_installed == 6
        assert planner.jobs_failed == 0

    def test_outcomes_keep_submission_order(self):
        planner = BatchInstallPlanner(make_registry(), max_workers=4, batch_size=2)
        jobs = [job_for(f"s{i}") for i in range(5)]
        outcomes = planner.install(jobs)
        assert [o.job.slice_id for o in outcomes] == [j.slice_id for j in jobs]

    def test_spec_domain_mismatch_fails_before_preparing(self):
        registry = make_registry()
        planner = BatchInstallPlanner(registry)
        bad = InstallJob(slice_id="s0", attempts=[{"alpha": DomainSpec(slice_id="s0")}])
        (outcome,) = planner.install([bad])
        assert not outcome.ok
        assert "mismatch" in str(outcome.error)
        for driver in registry:
            assert driver.prepares == 0

    def test_job_with_no_attempts_fails_cleanly(self):
        planner = BatchInstallPlanner(make_registry())
        (outcome,) = planner.install([InstallJob(slice_id="s0", attempts=[])])
        assert not outcome.ok
        assert "no install attempts" in str(outcome.error)


class TestUnwindDiscipline:
    def test_prepare_failure_unwinds_only_that_job(self):
        registry = make_registry()
        registry.get("gamma").fail_next_prepare = 1
        planner = BatchInstallPlanner(registry, max_workers=1)  # deterministic victim
        outcomes = planner.install([job_for("s0"), job_for("s1")])
        assert [o.ok for o in outcomes] == [False, True]
        assert_zero_residue(registry)
        # The survivor holds in every domain; the victim holds nowhere.
        for driver in registry:
            assert {r.slice_id for r in driver.reservations()} == {"s1"}

    def test_commit_failure_releases_committed_and_rolls_back_prepared(self):
        registry = make_registry()
        # beta commits after alpha in registry order: alpha is COMMITTED
        # when beta's commit fails, gamma is still PREPARED.
        registry.get("beta").fail_next_commit = 1
        planner = BatchInstallPlanner(registry, max_workers=1)
        (outcome,) = planner.install([job_for("s0")])
        assert not outcome.ok
        assert_zero_residue(registry)
        alpha, beta, gamma = (registry.get(d) for d in DOMAINS)
        assert alpha.releases == 1  # committed → released
        assert gamma.rollbacks == 1  # still prepared → rolled back
        # Reverse order: gamma unwinds before alpha (recorded rollbacks).
        unwound = [domain for domain, _, _ in outcome.rollbacks]
        assert unwound.index("gamma") < unwound.index("alpha")

    def test_validate_failure_unwinds_everything(self):
        from repro.drivers.base import DriverError

        registry = make_registry()
        planner = BatchInstallPlanner(registry)

        def veto(reservations):
            raise DriverError("validator", "cross-domain check failed")

        job = InstallJob(slice_id="s0", attempts=[spec_map("s0")], validate=veto)
        (outcome,) = planner.install([job])
        assert not outcome.ok
        assert "cross-domain check failed" in str(outcome.error)
        assert_zero_residue(registry)
        for driver in registry:
            assert driver.reservations() == []

    def test_second_attempt_succeeds_and_hides_first_attempt_rollbacks(self):
        fired: List[tuple] = []
        registry = make_registry()
        registry.get("beta").fail_next_prepare = 1
        planner = BatchInstallPlanner(
            registry, max_workers=1, on_rollback=lambda *a: fired.append(a)
        )
        (outcome,) = planner.install([job_for("s0", attempts=2)])
        assert outcome.ok
        # First attempt's unwind was buffered but never surfaced.
        assert fired == []
        assert outcome.rollbacks  # the buffer does record the retry
        assert_zero_residue(registry)

    def test_rollback_hook_fires_for_failed_jobs_only(self):
        fired: List[tuple] = []
        registry = make_registry()
        registry.get("gamma").fail_next_prepare = 1
        planner = BatchInstallPlanner(
            registry, max_workers=1, on_rollback=lambda *a: fired.append(a)
        )
        outcomes = planner.install([job_for("s0"), job_for("s1")])
        assert [o.ok for o in outcomes] == [False, True]
        assert fired  # the failed job surfaced its unwinds
        assert {r.slice_id for _, r, _ in fired} == {"s0"}


class TestConcurrencyCaps:
    def test_per_driver_semaphore_bounds_inflight_prepares(self):
        class Probe(MockDriver):
            def __init__(self):
                super().__init__(domain="probe", max_concurrent_installs=2)
                self.inflight = 0
                self.max_inflight = 0
                self._gauge = threading.Lock()

            def _do_prepare(self, spec):
                with self._gauge:
                    self.inflight += 1
                    self.max_inflight = max(self.max_inflight, self.inflight)
                try:
                    import time

                    time.sleep(0.002)
                    return super()._do_prepare(spec)
                finally:
                    with self._gauge:
                        self.inflight -= 1

        probe = Probe()
        registry = DriverRegistry([probe])
        planner = BatchInstallPlanner(registry, max_workers=8)
        outcomes = planner.install(
            [
                InstallJob(slice_id=f"s{i}", attempts=[{"probe": DomainSpec(slice_id=f"s{i}")}])
                for i in range(12)
            ]
        )
        assert all(o.ok for o in outcomes)
        assert probe.max_inflight <= 2

    def test_interleaved_batches_keep_invariant_under_failure_injection(self):
        """Two planners hammer the same registry from two threads with
        failures injected everywhere; after quiescence the conservation
        invariant holds and no reservation is stranded."""
        registry = make_registry(capacity_mbps=10_000.0)
        for driver in registry:
            driver.fail_next_prepare = 3
            driver.fail_next_commit = 2
        planners = [
            BatchInstallPlanner(registry, max_workers=4, batch_size=8)
            for _ in range(2)
        ]
        results: List[List] = [[], []]
        errors: List[Exception] = []

        def run(which: int) -> None:
            try:
                jobs = [job_for(f"p{which}-s{i}") for i in range(16)]
                results[which] = planners[which].install(jobs)
            except Exception as exc:  # pragma: no cover - must not happen
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(w,)) for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        outcomes = results[0] + results[1]
        assert len(outcomes) == 32
        assert_zero_residue(registry)
        # Failed jobs hold nothing anywhere; successful ones everywhere.
        for outcome in outcomes:
            held_in = {
                d.domain
                for d in registry
                if any(r.slice_id == outcome.job.slice_id for r in d.reservations())
            }
            assert held_in == (set(DOMAINS) if outcome.ok else set())
