"""Two-phase install transaction + registry behavior.

The acceptance bar: injecting a driver failure during ``prepare`` on
any one domain leaves **zero residual reservations** in the other
domains — checked both at the transaction level (pure mocks) and
end-to-end through the orchestrator against the real testbed.
"""

from __future__ import annotations

import pytest

from repro.core.orchestrator import Orchestrator
from repro.core.slices import SliceState
from repro.drivers.adapters import build_default_registry
from repro.drivers.base import DomainSpec, DriverError, ReservationState
from repro.drivers.mock import MockDriver
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import InstallTransaction, TransactionError
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request


def mock_registry(n: int = 3) -> DriverRegistry:
    return DriverRegistry(
        [MockDriver(domain=f"d{i}", capacity_mbps=100.0) for i in range(n)]
    )


def specs_for(registry: DriverRegistry, slice_id: str = "slice-x", mbps: float = 10.0):
    return {
        domain: DomainSpec(slice_id=slice_id, throughput_mbps=mbps)
        for domain in registry.domains()
    }


class TestRegistry:
    def test_order_is_registration_order(self):
        registry = mock_registry(3)
        assert registry.domains() == ["d0", "d1", "d2"]

    def test_duplicate_domain_rejected_unless_replace(self):
        registry = mock_registry(1)
        with pytest.raises(DriverError):
            registry.register(MockDriver(domain="d0"))
        replacement = MockDriver(domain="d0")
        registry.register(replacement, replace=True)
        assert registry.get("d0") is replacement

    def test_unknown_domain_raises(self):
        registry = mock_registry(1)
        with pytest.raises(DriverError):
            registry.get("nope")
        with pytest.raises(DriverError):
            registry.unregister("nope")


class TestTransaction:
    def test_success_commits_every_domain(self):
        registry = mock_registry(3)
        reservations = InstallTransaction(registry).run(specs_for(registry))
        assert set(reservations) == {"d0", "d1", "d2"}
        assert all(
            r.state is ReservationState.COMMITTED for r in reservations.values()
        )

    def test_prepare_failure_rolls_back_prepared_domains(self):
        registry = mock_registry(3)
        registry.get("d1").fail_next_prepare = 1
        rolled = []
        txn = InstallTransaction(
            registry, on_rollback=lambda d, res, reason: rolled.append(d)
        )
        with pytest.raises(TransactionError) as excinfo:
            txn.run(specs_for(registry))
        assert excinfo.value.domain == "d1"
        assert rolled == ["d0"]  # reverse order; d1/d2 never held anything
        for domain in registry.domains():
            assert registry.get(domain).held_mbps == 0.0
            assert registry.get(domain).reservation_of("slice-x") is None

    def test_first_domain_failure_needs_no_rollback(self):
        registry = mock_registry(3)
        registry.get("d0").fail_next_prepare = 1
        rolled = []
        txn = InstallTransaction(
            registry, on_rollback=lambda d, res, reason: rolled.append(d)
        )
        with pytest.raises(TransactionError):
            txn.run(specs_for(registry))
        assert rolled == []
        assert all(d.held_mbps == 0.0 for d in registry)

    def test_commit_failure_releases_committed_domains(self):
        registry = mock_registry(3)
        registry.get("d2").fail_next_commit = 1
        rolled = []
        txn = InstallTransaction(
            registry, on_rollback=lambda d, res, reason: rolled.append(d)
        )
        with pytest.raises(TransactionError) as excinfo:
            txn.run(specs_for(registry))
        assert excinfo.value.domain == "d2"
        # d0/d1 were already committed (released), d2's hold rolled back.
        assert set(rolled) == {"d0", "d1", "d2"}
        assert all(d.held_mbps == 0.0 for d in registry)

    def test_validate_hook_aborts_and_unwinds(self):
        registry = mock_registry(2)

        def validate(reservations):
            raise DriverError("orchestrator", "latency bound violated")

        with pytest.raises(TransactionError) as excinfo:
            InstallTransaction(registry).run(specs_for(registry), validate=validate)
        assert excinfo.value.domain == "orchestrator"
        assert all(d.held_mbps == 0.0 for d in registry)

    def test_spec_domain_mismatch_fails_before_any_prepare(self):
        registry = mock_registry(2)
        specs = specs_for(registry)
        del specs["d1"]
        with pytest.raises(TransactionError):
            InstallTransaction(registry).run(specs)
        assert all(d.prepares == 0 for d in registry)

    def test_retry_after_failure_succeeds(self):
        registry = mock_registry(2)
        registry.get("d1").fail_next_prepare = 1
        txn = InstallTransaction(registry)
        with pytest.raises(TransactionError):
            txn.run(specs_for(registry))
        reservations = txn.run(specs_for(registry))
        assert all(
            r.state is ReservationState.COMMITTED for r in reservations.values()
        )


def build_orchestrator(testbed, registry):
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=3),
        registry=registry,
    )
    orch.start()
    return orch


def submit(orch, **kwargs):
    request = make_request(arrival_time=orch.sim.now, **kwargs)
    profile = ConstantProfile(request.sla.throughput_mbps, level=0.5, noise_std=0.0)
    return request, orch.submit(request, profile)


def assert_zero_residue(testbed, slice_id):
    assert testbed.ran.serving_enb_of(slice_id) is None
    assert testbed.transport.allocation_of(slice_id) is None
    assert testbed.cloud.stack_of(slice_id) is None
    assert all(not link.slices() for link in testbed.transport.topology.links())
    assert all(enb.grid.effective_reserved == 0 for enb in testbed.ran.enbs())
    assert all(dc.free_vcpus == dc.total_vcpus for dc in testbed.cloud.datacenters())


class TestOrchestratorRollback:
    """End-to-end: a chaos driver breaks the install mid-transaction."""

    def test_prepare_failure_in_last_domain_leaves_zero_residue(self, testbed):
        registry = build_default_registry(testbed.allocator)
        chaos = MockDriver(domain="chaos", capacity_mbps=1_000.0)
        # Fail every prepare: the orchestrator retries once per
        # candidate DC, and each attempt must fail for a hard reject.
        chaos.fail_next_prepare = 99
        registry.register(chaos)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch)
        assert not decision.admitted
        assert "chaos" in decision.reason
        slice_id = request.request_id.replace("req-", "slice-")
        assert orch.slice(slice_id).state is SliceState.REJECTED
        assert_zero_residue(testbed, slice_id)
        assert testbed.plmn_pool.available == testbed.plmn_pool.capacity
        assert orch.calendar.bookings() == []
        rollbacks = [
            e for e in orch.events.since(0) if e.event_type == "driver.rollback"
        ]
        assert {e.data["domain"] for e in rollbacks} == {
            "ran",
            "transport",
            "cloud",
            "epc",
        }
        assert all(e.slice_id == slice_id for e in rollbacks)

    def test_commit_failure_in_extra_domain_leaves_zero_residue(self, testbed):
        registry = build_default_registry(testbed.allocator)
        chaos = MockDriver(domain="chaos", capacity_mbps=1_000.0)
        chaos.fail_next_commit = 99
        registry.register(chaos)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch)
        assert not decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        assert_zero_residue(testbed, slice_id)
        assert chaos.held_mbps == 0.0

    def test_install_succeeds_after_chaos_clears(self, testbed):
        registry = build_default_registry(testbed.allocator)
        chaos = MockDriver(domain="chaos", capacity_mbps=1_000.0)
        chaos.fail_next_prepare = 99
        registry.register(chaos)
        orch = build_orchestrator(testbed, registry)
        _, first = submit(orch)
        assert not first.admitted
        chaos.fail_next_prepare = 0  # chaos clears
        request, second = submit(orch)
        assert second.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        orch.sim.run_until(10.0)
        assert orch.slice(slice_id).state is SliceState.ACTIVE
        # The extra mock domain holds the slice alongside the real four.
        assert chaos.reservation_of(slice_id) is not None
        assert chaos.held_mbps > 0.0
        # Expiry releases every domain, mock included.
        orch.sim.run_until(4_000.0)
        assert orch.slice(slice_id).state is SliceState.EXPIRED
        assert chaos.held_mbps == 0.0
        assert_zero_residue(testbed, slice_id)

    def test_dc_independent_prefix_prepared_once_across_candidates(self, testbed):
        """A domain registered before transport (like RAN) must not be
        re-prepared/rolled back for every failed DC candidate."""
        probe = MockDriver(domain="probe", capacity_mbps=1_000.0)
        chaos = MockDriver(domain="chaos", capacity_mbps=1_000.0)
        chaos.fail_next_prepare = 1  # first DC candidate fails, second works
        registry = DriverRegistry([probe])
        for driver in build_default_registry(testbed.allocator).drivers():
            registry.register(driver)
        registry.register(chaos)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch)
        assert decision.admitted
        assert probe.prepares == 1  # prefix: prepared exactly once
        assert probe.rollbacks == 0
        assert chaos.prepares == 2  # suffix: once per candidate
        # The retried-but-successful install puts NO rollback noise on
        # the feed — consumers read driver.rollback as install failure.
        assert not [
            e for e in orch.events.since(0) if e.event_type == "driver.rollback"
        ]

    def test_commit_failure_in_prefix_domain_leaves_zero_residue(self, testbed):
        probe = MockDriver(domain="probe", capacity_mbps=1_000.0)
        probe.fail_next_commit = 99
        registry = DriverRegistry([probe])
        for driver in build_default_registry(testbed.allocator).drivers():
            registry.register(driver)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch)
        assert not decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        assert_zero_residue(testbed, slice_id)
        assert probe.held_mbps == 0.0

    def test_release_failure_keeps_reservation_retryable(self, testbed):
        """A failing backend release must not strand capacity behind a
        forgotten record: the reservation stays COMMITTED, the failure
        lands on the event feed, and a retry succeeds."""
        registry = build_default_registry(testbed.allocator)
        flaky = MockDriver(domain="flaky", capacity_mbps=1_000.0)
        registry.register(flaky)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch, duration_s=60.0)
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        orch.sim.run_until(10.0)
        flaky.fail_next_release = 1
        # Expiry (~t=73) sweeps all domains; stop before the next
        # monitoring epoch (t=120) retries the stuck release.
        orch.sim.run_until(90.0)
        assert orch.slice(slice_id).state is SliceState.EXPIRED
        failures = [
            e for e in orch.events.since(0) if e.event_type == "driver.release_failed"
        ]
        assert len(failures) == 1 and failures[0].data["domain"] == "flaky"
        # The hold survived, and the PLMN is NOT returned to the pool
        # while a backend still serves the slice under it.
        assert flaky.held_mbps > 0.0
        assert flaky.reservation_of(slice_id) is not None
        assert testbed.plmn_pool.available == testbed.plmn_pool.capacity - 1
        # The monitoring loop retries stuck releases each epoch.
        orch.sim.run_until(130.0)
        assert flaky.held_mbps == 0.0
        assert testbed.plmn_pool.available == testbed.plmn_pool.capacity
        recovered = [
            e
            for e in orch.events.since(0)
            if e.event_type == "driver.release_recovered"
        ]
        assert len(recovered) == 1 and recovered[0].slice_id == slice_id

    def test_empty_ran_fleet_books_rejection(self):
        """A planning failure (no eNBs at all) during install must book
        a rejection — the batch broker and advance bookings call
        install_admitted directly, where a crash would escape into the
        sim loop."""
        from repro.experiments.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(TestbedConfig(n_enbs=0))
        orch = build_orchestrator(testbed, build_default_registry(testbed.allocator))
        request = make_request()
        profile = ConstantProfile(request.sla.throughput_mbps, level=0.5, noise_std=0.0)
        decision = orch.install_admitted(request, profile)
        assert not decision.admitted
        assert "no eNBs registered" in decision.reason
        assert orch.ledger.rejections == 1

    def test_epc_instance_bound_through_driver(self, testbed):
        registry = build_default_registry(testbed.allocator)
        orch = build_orchestrator(testbed, registry)
        request, decision = submit(orch)
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        runtime = orch.runtime(slice_id)
        assert runtime.epc is not None and runtime.epc.running
        assert set(runtime.reservations) == {"ran", "transport", "cloud", "epc"}
        orch.sim.run_until(4_000.0)
        assert not runtime.epc.running
