"""Admin surface (`/v1/admin/*`) and the durable event cursor
(`GET /v1/events?after_lsn=`)."""

from __future__ import annotations

from repro.api.service import SliceService
from repro.api.v1 import build_v1_api
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def build_stack(testbed, tmp_path=None, **config_overrides):
    config = OrchestratorConfig(
        durability_dir=str(tmp_path / "store") if tmp_path is not None else None,
        event_log_capacity=config_overrides.pop("event_log_capacity", 1024),
        **config_overrides,
    )
    orchestrator = Orchestrator(
        sim=Simulator(),
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=config,
        streams=RandomStreams(seed=5),
        registry=testbed.registry,
    )
    orchestrator.start()
    service = SliceService(orchestrator)
    return orchestrator, service, build_v1_api(service)


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestAdminState:
    def test_state_reports_durability_and_control_plane(self, testbed, tmp_path):
        orchestrator, _, api = build_stack(testbed, tmp_path)
        created = api.post("/v1/slices", slice_body())
        assert created.status == 201
        response = api.get("/v1/admin/state")
        assert response.ok
        durability = response.body["durability"]
        assert durability["enabled"] is True
        assert durability["last_lsn"] > 0
        control = response.body["control_plane"]
        assert control["live_slices"] == 1
        assert "planner" in response.body
        response.json()  # everything must be JSON-safe

    def test_state_with_durability_disabled(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.get("/v1/admin/state")
        assert response.ok
        assert response.body["durability"] == {"enabled": False}


class TestAdminCheckpoint:
    def test_checkpoint_compacts_and_reports_lsn(self, testbed, tmp_path):
        orchestrator, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        before = orchestrator.store.records_since_checkpoint
        assert before > 0
        response = api.post("/v1/admin/checkpoint")
        assert response.ok
        assert response.body["checkpoint_lsn"] > 0
        assert orchestrator.store.snapshot_lsn == response.body["checkpoint_lsn"]
        assert orchestrator.store.records_since_checkpoint <= 1  # audit marker

    def test_checkpoint_conflicts_when_disabled(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.post("/v1/admin/checkpoint")
        assert response.status == 409
        assert response.body["error"]["code"] == "conflict"


class TestDurableEventCursor:
    def test_after_lsn_replays_events_with_lsns(self, testbed, tmp_path):
        _, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        response = api.get("/v1/events?after_lsn=0")
        assert response.ok
        events = response.body["events"]
        assert events, "journaled events expected"
        assert all("lsn" in event for event in events)
        assert [e["lsn"] for e in events] == sorted(e["lsn"] for e in events)
        assert response.body["last_lsn"] >= events[-1]["lsn"]
        assert "replay_floor_lsn" in response.body
        # Resuming from the last lsn returns only what came after.
        resumed = api.get(f"/v1/events?after_lsn={events[-1]['lsn']}")
        assert resumed.ok
        assert all(e["lsn"] > events[-1]["lsn"] for e in resumed.body["events"])

    def test_after_lsn_reaches_past_the_inmemory_buffer(self, testbed, tmp_path):
        """The whole point of the durable cursor: events evicted from
        the bounded in-memory feed are still replayable."""
        orchestrator, _, api = build_stack(
            testbed, tmp_path, event_log_capacity=4
        )
        for i in range(8):
            orchestrator.events.emit(0.0, f"test.event-{i}")
        in_memory = api.get("/v1/events?since=0")
        assert len(in_memory.body["events"]) <= 4  # buffer evicted the rest
        durable = api.get("/v1/events?after_lsn=0&limit=1000")
        names = [e["type"] for e in durable.body["events"]]
        assert [f"test.event-{i}" for i in range(8)] == [
            n for n in names if n.startswith("test.event-")
        ]

    def test_after_lsn_is_tenant_scoped(self, testbed, tmp_path):
        _, _, api = build_stack(testbed, tmp_path)
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "tenant-a"}
        ).status == 201
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "tenant-b"}
        ).status == 201
        response = api.get(
            "/v1/events?after_lsn=0", headers={"X-Tenant-Id": "tenant-a"}
        )
        tenants = {e.get("tenant_id") for e in response.body["events"]}
        assert "tenant-b" not in tenants

    def test_after_lsn_requires_durability(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.get("/v1/events?after_lsn=0")
        assert response.status == 400
        assert response.body["error"]["field"] == "after_lsn"

    def test_after_lsn_survives_restart(self, testbed, tmp_path):
        """A consumer's durable cursor keeps working against the
        restarted control plane."""
        from repro.store import ControlPlaneStore, RecoveryManager
        from repro.core.slices import PlmnPool

        orchestrator, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        feed = api.get("/v1/events?after_lsn=0").body
        cursor = feed["events"][-1]["lsn"]
        orchestrator.store.close()

        store = ControlPlaneStore(str(tmp_path / "store"))
        restarted = Orchestrator(
            sim=Simulator(),
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=testbed.config.plmn_pool_size),
            config=OrchestratorConfig(),
            streams=RandomStreams(seed=6),
            registry=testbed.registry,
            store=store,
        )
        fresh_service = SliceService(restarted)
        RecoveryManager(restarted, service=fresh_service).restore()
        fresh_api = build_v1_api(fresh_service)
        resumed = fresh_api.get(f"/v1/events?after_lsn={cursor}")
        assert resumed.ok
        # Recovery compacted the journal; the floor tells the consumer
        # where replay now starts (gap-detection, Kafka-retention style)
        # — and the recovery.completed marker is always visible past it.
        assert resumed.body["replay_floor_lsn"] >= cursor
        types = [e["type"] for e in resumed.body["events"]]
        assert "recovery.completed" in types
        # Seq numbering never went backwards across the restart.
        seqs = [e["seq"] for e in resumed.body["events"]]
        assert all(s > feed["events"][-1]["seq"] for s in seqs if s)


class TestQuotaDurability:
    def test_set_quota_is_journaled(self, testbed, tmp_path):
        orchestrator, service, _ = build_stack(testbed, tmp_path)
        service.set_quota("tenant-a", max_active_slices=2)
        kinds = [r.record_type for r in orchestrator.store.records()]
        assert "quota.set" in kinds
        # And the checkpoint carries it too.
        state = orchestrator.durable_state()
        assert state["quotas"]["tenant-a"]["max_active_slices"] == 2


class TestAdminObservability:
    """`GET /v1/admin/metrics` + `GET /v1/admin/traces`: the 32-slice
    batch acceptance trace, the Prometheus scrape, and the cheap
    disabled-mode answers."""

    def _install_batch(self, api, orchestrator, n=32):
        for i in range(n):
            created = api.post(
                "/v1/slices?mode=batch",
                slice_body(throughput_mbps=2.0),
                headers={"X-Tenant-Id": f"t{i % 4}"},
            )
            assert created.status == 202, created.body
        orchestrator.sim.run_until(orchestrator.sim.now + 600.0)

    def test_batch_trace_is_complete_with_correct_parentage(self, testbed):
        orchestrator, _, api = build_stack(testbed, observability=True)
        self._install_batch(api, orchestrator)
        response = api.get("/v1/admin/traces?limit=20")
        assert response.ok
        assert response.body["enabled"] is True
        traces = response.body["traces"]
        assert traces
        trace = max(traces, key=lambda t: t["span_count"])
        spans = trace["spans"]
        names = {s["name"] for s in spans}
        # Every pipeline stage shows up in the batch's trace.
        assert {
            "install.batch", "install.job", "admission",
            "placement", "driver.prepare", "driver.commit",
        } <= names
        # Exactly one root, and every other span's parent resolves
        # within the trace — no orphans, whatever thread closed it.
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "install.batch"
        ids = {s["span_id"] for s in spans}
        assert all(
            s["parent_id"] in ids for s in spans if s["parent_id"] is not None
        )
        # Every span settled (the batch outruns the 12-identity PLMN
        # pool, so late jobs are *rejected* — their admission spans
        # must close as errors carrying the rejection, not hang open).
        assert all(s["status"] in ("ok", "error") for s in spans)
        rejected = [s for s in spans if s["status"] == "error"]
        assert all("PLMN" in (s["error"] or "") for s in rejected)
        assert all(s["status"] == "ok" for s in spans if s["name"].startswith("driver."))
        # Settled bookkeeping: nothing in flight, nothing dropped.
        tracer = response.body["tracer"]
        assert tracer["spans_started"] == tracer["spans_finished"]
        assert tracer["spans_dropped"] == 0

    def test_traces_slow_filter_and_limit(self, testbed):
        orchestrator, _, api = build_stack(
            testbed, observability=True, observability_slow_span_ms=0.0
        )
        self._install_batch(api, orchestrator, n=4)
        slow = api.get("/v1/admin/traces?slow=true&limit=5")
        assert slow.ok
        assert slow.body["slow"] is True
        assert slow.body["slow_threshold_ms"] == 0.0
        assert 0 < len(slow.body["slow_spans"]) <= 5
        # Slow entries carry ancestry for attribution.
        assert all("ancestry" in e for e in slow.body["slow_spans"])

    def test_metrics_scrape_is_prometheus_text(self, testbed):
        orchestrator, _, api = build_stack(testbed, observability=True)
        self._install_batch(api, orchestrator, n=8)
        response = api.get("/v1/admin/metrics")
        assert response.ok
        assert response.content_type.startswith("text/plain")
        assert response.text.endswith("\n")
        text = response.text
        # Control-plane namespace: per-stage histograms with buckets.
        assert "# TYPE cp_admission_ms histogram" in text
        assert 'cp_driver_commit_ms_bucket{label="ran",le="+Inf"}' in text
        assert "cp_tracer_spans_finished_total" in text
        # Sim-telemetry namespace rides along, prefixed.
        assert "sim_" in text

    def test_disabled_mode_answers_cheaply(self, testbed):
        orchestrator, _, api = build_stack(testbed)  # observability off
        self._install_batch(api, orchestrator, n=2)
        traces = api.get("/v1/admin/traces")
        assert traces.ok
        assert traces.body == {
            "enabled": False, "slow": False, "count": 0,
            "traces": [], "slow_spans": [],
        }
        metrics = api.get("/v1/admin/metrics")
        assert metrics.ok
        assert "cp_" not in metrics.text
        assert "sim_" in metrics.text  # sim telemetry is always on

    def test_bad_query_parameters_are_400s(self, testbed):
        _, _, api = build_stack(testbed, observability=True)
        assert api.get("/v1/admin/traces?limit=0").status == 400
        assert api.get("/v1/admin/traces?limit=bogus").status == 400
        assert api.get("/v1/admin/traces?slow=maybe").status == 400
