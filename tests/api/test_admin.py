"""Admin surface (`/v1/admin/*`) and the durable event cursor
(`GET /v1/events?after_lsn=`)."""

from __future__ import annotations

from repro.api.service import SliceService
from repro.api.v1 import build_v1_api
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def build_stack(testbed, tmp_path=None, **config_overrides):
    config = OrchestratorConfig(
        durability_dir=str(tmp_path / "store") if tmp_path is not None else None,
        event_log_capacity=config_overrides.pop("event_log_capacity", 1024),
        **config_overrides,
    )
    orchestrator = Orchestrator(
        sim=Simulator(),
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=config,
        streams=RandomStreams(seed=5),
        registry=testbed.registry,
    )
    orchestrator.start()
    service = SliceService(orchestrator)
    return orchestrator, service, build_v1_api(service)


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestAdminState:
    def test_state_reports_durability_and_control_plane(self, testbed, tmp_path):
        orchestrator, _, api = build_stack(testbed, tmp_path)
        created = api.post("/v1/slices", slice_body())
        assert created.status == 201
        response = api.get("/v1/admin/state")
        assert response.ok
        durability = response.body["durability"]
        assert durability["enabled"] is True
        assert durability["last_lsn"] > 0
        control = response.body["control_plane"]
        assert control["live_slices"] == 1
        assert "planner" in response.body
        response.json()  # everything must be JSON-safe

    def test_state_with_durability_disabled(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.get("/v1/admin/state")
        assert response.ok
        assert response.body["durability"] == {"enabled": False}


class TestAdminCheckpoint:
    def test_checkpoint_compacts_and_reports_lsn(self, testbed, tmp_path):
        orchestrator, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        before = orchestrator.store.records_since_checkpoint
        assert before > 0
        response = api.post("/v1/admin/checkpoint")
        assert response.ok
        assert response.body["checkpoint_lsn"] > 0
        assert orchestrator.store.snapshot_lsn == response.body["checkpoint_lsn"]
        assert orchestrator.store.records_since_checkpoint <= 1  # audit marker

    def test_checkpoint_conflicts_when_disabled(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.post("/v1/admin/checkpoint")
        assert response.status == 409
        assert response.body["error"]["code"] == "conflict"


class TestDurableEventCursor:
    def test_after_lsn_replays_events_with_lsns(self, testbed, tmp_path):
        _, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        response = api.get("/v1/events?after_lsn=0")
        assert response.ok
        events = response.body["events"]
        assert events, "journaled events expected"
        assert all("lsn" in event for event in events)
        assert [e["lsn"] for e in events] == sorted(e["lsn"] for e in events)
        assert response.body["last_lsn"] >= events[-1]["lsn"]
        assert "replay_floor_lsn" in response.body
        # Resuming from the last lsn returns only what came after.
        resumed = api.get(f"/v1/events?after_lsn={events[-1]['lsn']}")
        assert resumed.ok
        assert all(e["lsn"] > events[-1]["lsn"] for e in resumed.body["events"])

    def test_after_lsn_reaches_past_the_inmemory_buffer(self, testbed, tmp_path):
        """The whole point of the durable cursor: events evicted from
        the bounded in-memory feed are still replayable."""
        orchestrator, _, api = build_stack(
            testbed, tmp_path, event_log_capacity=4
        )
        for i in range(8):
            orchestrator.events.emit(0.0, f"test.event-{i}")
        in_memory = api.get("/v1/events?since=0")
        assert len(in_memory.body["events"]) <= 4  # buffer evicted the rest
        durable = api.get("/v1/events?after_lsn=0&limit=1000")
        names = [e["type"] for e in durable.body["events"]]
        assert [f"test.event-{i}" for i in range(8)] == [
            n for n in names if n.startswith("test.event-")
        ]

    def test_after_lsn_is_tenant_scoped(self, testbed, tmp_path):
        _, _, api = build_stack(testbed, tmp_path)
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "tenant-a"}
        ).status == 201
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "tenant-b"}
        ).status == 201
        response = api.get(
            "/v1/events?after_lsn=0", headers={"X-Tenant-Id": "tenant-a"}
        )
        tenants = {e.get("tenant_id") for e in response.body["events"]}
        assert "tenant-b" not in tenants

    def test_after_lsn_requires_durability(self, testbed):
        _, _, api = build_stack(testbed)
        response = api.get("/v1/events?after_lsn=0")
        assert response.status == 400
        assert response.body["error"]["field"] == "after_lsn"

    def test_after_lsn_survives_restart(self, testbed, tmp_path):
        """A consumer's durable cursor keeps working against the
        restarted control plane."""
        from repro.store import ControlPlaneStore, RecoveryManager
        from repro.core.slices import PlmnPool

        orchestrator, _, api = build_stack(testbed, tmp_path)
        assert api.post("/v1/slices", slice_body()).status == 201
        feed = api.get("/v1/events?after_lsn=0").body
        cursor = feed["events"][-1]["lsn"]
        orchestrator.store.close()

        store = ControlPlaneStore(str(tmp_path / "store"))
        restarted = Orchestrator(
            sim=Simulator(),
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=testbed.config.plmn_pool_size),
            config=OrchestratorConfig(),
            streams=RandomStreams(seed=6),
            registry=testbed.registry,
            store=store,
        )
        fresh_service = SliceService(restarted)
        RecoveryManager(restarted, service=fresh_service).restore()
        fresh_api = build_v1_api(fresh_service)
        resumed = fresh_api.get(f"/v1/events?after_lsn={cursor}")
        assert resumed.ok
        # Recovery compacted the journal; the floor tells the consumer
        # where replay now starts (gap-detection, Kafka-retention style)
        # — and the recovery.completed marker is always visible past it.
        assert resumed.body["replay_floor_lsn"] >= cursor
        types = [e["type"] for e in resumed.body["events"]]
        assert "recovery.completed" in types
        # Seq numbering never went backwards across the restart.
        seqs = [e["seq"] for e in resumed.body["events"]]
        assert all(s > feed["events"][-1]["seq"] for s in seqs if s)


class TestQuotaDurability:
    def test_set_quota_is_journaled(self, testbed, tmp_path):
        orchestrator, service, _ = build_stack(testbed, tmp_path)
        service.set_quota("tenant-a", max_active_slices=2)
        kinds = [r.record_type for r in orchestrator.store.records()]
        assert "quota.set" in kinds
        # And the checkpoint carries it too.
        state = orchestrator.durable_state()
        assert state["quotas"]["tenant-a"]["max_active_slices"] == 2
