"""Tests for the versioned northbound surface (/v1): tenancy,
pagination, async batch operations, and the event feed."""

from __future__ import annotations

import pytest

from repro.api.routes import build_orchestrator_api
from repro.api.service import SliceService
from repro.core.broker import SliceBroker
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=2),
    )
    orchestrator.start()
    broker = SliceBroker(orchestrator, window_s=300.0)
    service = SliceService(orchestrator, broker=broker)
    api = build_orchestrator_api(orchestrator, service=service)
    return sim, orchestrator, broker, api


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestIndex:
    def test_v1_index_lists_routes(self, stack):
        _, _, _, api = stack
        response = api.get("/v1")
        assert response.ok
        assert response.body["version"] == "v1"
        assert "POST /v1/slices" in response.body["routes"]
        assert "deprecated" in response.body

    def test_router_errors_enveloped_on_v1_only(self, stack):
        """404/405/500 produced by the router itself (before any handler
        runs) must carry the envelope under /v1 — flat strings stay on
        the legacy surface only."""
        _, _, _, api = stack
        unknown = api.get("/v1/nope")
        assert unknown.status == 404
        assert unknown.body["error"]["code"] == "not_found"
        wrong_verb = api.dispatch("PUT", "/v1/slices")
        assert wrong_verb.status == 405
        assert wrong_verb.body["error"]["code"] == "method_not_allowed"
        legacy = api.get("/nope")
        assert legacy.status == 404
        assert isinstance(legacy.body["error"], str)

    def test_nan_throughput_is_400_not_500(self, stack):
        _, _, _, api = stack
        response = api.post("/v1/slices", body=slice_body(throughput_mbps="nan"))
        assert response.status == 400
        assert response.body["error"]["code"] == "invalid_value"


class TestCreateSync:
    def test_create_returns_real_slice_id(self, stack):
        sim, orchestrator, _, api = stack
        response = api.post("/v1/slices", body=slice_body())
        assert response.status == 201
        slice_id = response.body["slice_id"]
        # The id comes from the orchestrator's decision, not string
        # surgery in the route layer — it must resolve.
        assert orchestrator.slice(slice_id).slice_id == slice_id
        assert response.body["location"] == f"/v1/slices/{slice_id}"

    def test_rejection_is_enveloped_409(self, stack):
        _, _, _, api = stack
        response = api.post("/v1/slices", body=slice_body(throughput_mbps=500.0))
        assert response.status == 409
        assert response.body["error"]["code"] == "admission_rejected"
        assert response.body["admitted"] is False
        assert response.body["slice_id"]  # rejected slices get a record too

    def test_validation_error_enveloped_400(self, stack):
        _, _, _, api = stack
        response = api.post("/v1/slices", body={"service_type": "embb"})
        assert response.status == 400
        assert response.body["error"]["code"] == "missing_field"

    def test_unknown_mode_400(self, stack):
        _, _, _, api = stack
        response = api.post("/v1/slices?mode=telepathy", body=slice_body())
        assert response.status == 400
        assert response.body["error"]["field"] == "mode"

    def test_header_tenant_overrides_body(self, stack):
        sim, orchestrator, _, api = stack
        response = api.post(
            "/v1/slices",
            body=slice_body(tenant_id="imposter"),
            headers={"X-Tenant-Id": "real-tenant"},
        )
        assert response.status == 201
        assert response.body["tenant_id"] == "real-tenant"


class TestTenantScoping:
    def test_listing_is_tenant_scoped(self, stack):
        _, _, _, api = stack
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "alpha"})
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "alpha"})
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "beta"})
        all_slices = api.get("/v1/slices").body
        assert all_slices["total"] == 3
        alpha = api.get("/v1/slices", headers={"X-Tenant-Id": "alpha"}).body
        assert alpha["total"] == 2
        assert all(s["tenant"] == "alpha" for s in alpha["slices"])
        beta = api.get("/v1/slices", headers={"X-Tenant-Id": "beta"}).body
        assert beta["total"] == 1

    def test_foreign_detail_reads_as_404(self, stack):
        _, _, _, api = stack
        created = api.post(
            "/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "alpha"}
        ).body
        mine = api.get(
            f"/v1/slices/{created['slice_id']}", headers={"X-Tenant-Id": "alpha"}
        )
        assert mine.ok
        foreign = api.get(
            f"/v1/slices/{created['slice_id']}", headers={"X-Tenant-Id": "beta"}
        )
        assert foreign.status == 404
        assert foreign.body["error"]["code"] == "not_found"

    def test_foreign_delete_reads_as_404(self, stack):
        sim, _, _, api = stack
        created = api.post(
            "/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "alpha"}
        ).body
        sim.run_until(10.0)
        response = api.delete(
            f"/v1/slices/{created['slice_id']}", headers={"X-Tenant-Id": "beta"}
        )
        assert response.status == 404


class TestPagination:
    def test_pagination_boundaries(self, stack):
        _, _, _, api = stack
        ids = [
            api.post("/v1/slices", body=slice_body(throughput_mbps=2.0)).body["slice_id"]
            for _ in range(5)
        ]
        page = api.get("/v1/slices?offset=0&limit=2").body
        assert [s["slice_id"] for s in page["slices"]] == ids[:2]
        assert page["total"] == 5 and page["count"] == 2
        page = api.get("/v1/slices?offset=4&limit=2").body
        assert [s["slice_id"] for s in page["slices"]] == ids[4:]
        assert page["count"] == 1
        page = api.get("/v1/slices?offset=5&limit=2").body
        assert page["slices"] == [] and page["total"] == 5

    def test_bad_pagination_params_400(self, stack):
        _, _, _, api = stack
        assert api.get("/v1/slices?offset=-1").status == 400
        assert api.get("/v1/slices?limit=zero").status == 400

    def test_state_filter(self, stack):
        sim, _, _, api = stack
        api.post("/v1/slices", body=slice_body())
        api.post("/v1/slices", body=slice_body(throughput_mbps=500.0))  # rejected
        sim.run_until(10.0)
        active = api.get("/v1/slices?state=active").body
        assert active["total"] == 1
        rejected = api.get("/v1/slices?state=rejected").body
        assert rejected["total"] == 1
        assert api.get("/v1/slices?state=bogus").status == 400


class TestBatchLifecycle:
    def test_202_then_poll_until_admitted(self, stack):
        sim, orchestrator, broker, api = stack
        response = api.post(
            "/v1/slices?mode=batch",
            body=slice_body(),
            headers={"X-Tenant-Id": "alpha"},
        )
        assert response.status == 202
        op_id = response.body["operation_id"]
        assert response.body["status"] == "pending"
        assert response.body["location"] == f"/v1/operations/{op_id}"
        # Nothing decided before the window flushes.
        pending = api.get(f"/v1/operations/{op_id}")
        assert pending.ok
        assert pending.body["status"] == "pending"
        assert pending.body["decision"] is None
        assert broker.pending == 1
        # The window flushes at window_s; the operation resolves.
        sim.run_until(301.0)
        done = api.get(f"/v1/operations/{op_id}").body
        assert done["status"] == "succeeded"
        assert done["decision"]["admitted"] is True
        slice_id = done["slice_id"]
        assert api.get(f"/v1/slices/{slice_id}").ok

    def test_batch_rejection_resolves_failed(self, stack):
        sim, _, _, api = stack
        op_id = api.post(
            "/v1/slices?mode=batch", body=slice_body(throughput_mbps=500.0)
        ).body["operation_id"]
        sim.run_until(301.0)
        done = api.get(f"/v1/operations/{op_id}").body
        assert done["status"] == "failed"
        assert done["decision"]["admitted"] is False
        assert done["decision"]["reason"]

    def test_operations_are_tenant_scoped(self, stack):
        _, _, _, api = stack
        op_id = api.post(
            "/v1/slices?mode=batch",
            body=slice_body(),
            headers={"X-Tenant-Id": "alpha"},
        ).body["operation_id"]
        assert api.get(f"/v1/operations/{op_id}", headers={"X-Tenant-Id": "beta"}).status == 404
        listing = api.get("/v1/operations", headers={"X-Tenant-Id": "beta"}).body
        assert listing["count"] == 0
        listing = api.get("/v1/operations", headers={"X-Tenant-Id": "alpha"}).body
        assert listing["count"] == 1

    def test_unknown_operation_404(self, stack):
        _, _, _, api = stack
        assert api.get("/v1/operations/op-999999").status == 404

    def test_operation_store_bound_is_hard(self):
        """Even an all-pending burst cannot grow the registry past its
        capacity (oldest pending evicted as a last resort)."""
        from repro.api.service import OperationStore
        from repro.core.admission import AdmissionDecision

        store = OperationStore(capacity=3)
        ops = [store.create("k", f"req-{i}", "t", 0.0) for i in range(5)]
        assert len(store.list()) == 3
        assert store.get(ops[0].op_id) is None  # oldest pending evicted
        assert store.get(ops[4].op_id) is not None
        # Resolved ops are preferred victims over pending ones.
        store.resolve(ops[2].op_id, AdmissionDecision("req-2", True, "ok"), 1.0)
        store.create("k", "req-5", "t", 2.0)
        assert store.get(ops[2].op_id) is None
        assert store.get(ops[3].op_id) is not None

    def test_batch_window_batches_multiple_requests(self, stack):
        sim, orchestrator, _, api = stack
        ops = [
            api.post("/v1/slices?mode=batch", body=slice_body(throughput_mbps=5.0)).body[
                "operation_id"
            ]
            for _ in range(3)
        ]
        sim.run_until(301.0)
        for op_id in ops:
            assert api.get(f"/v1/operations/{op_id}").body["status"] == "succeeded"
        assert orchestrator.ledger.admissions == 3


class TestEventFeed:
    def test_lifecycle_events_appear(self, stack):
        sim, _, _, api = stack
        created = api.post("/v1/slices", body=slice_body()).body
        api.post("/v1/slices", body=slice_body(throughput_mbps=500.0))
        sim.run_until(10.0)
        feed = api.get("/v1/events").body
        types = [e["type"] for e in feed["events"]]
        assert "slice.admitted" in types
        assert "slice.rejected" in types
        assert "slice.activated" in types
        admitted = next(e for e in feed["events"] if e["type"] == "slice.admitted")
        assert admitted["slice_id"] == created["slice_id"]

    def test_since_cursor(self, stack):
        sim, _, _, api = stack
        api.post("/v1/slices", body=slice_body())
        first = api.get("/v1/events").body
        assert first["events"]
        cursor = first["last_seq"]
        empty = api.get(f"/v1/events?since={cursor}").body
        assert empty["events"] == []
        api.post("/v1/slices", body=slice_body(throughput_mbps=2.0))
        fresh = api.get(f"/v1/events?since={cursor}").body
        assert fresh["events"]
        assert all(e["seq"] > cursor for e in fresh["events"])

    def test_feed_is_tenant_scoped(self, stack):
        _, _, _, api = stack
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "alpha"})
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "beta"})
        alpha = api.get("/v1/events", headers={"X-Tenant-Id": "alpha"}).body
        assert alpha["events"]
        assert all(e["tenant_id"] in (None, "alpha") for e in alpha["events"])

    def test_tenant_filter_applies_before_limit(self, stack):
        """A burst of foreign-tenant events must not push a tenant's own
        event past the page limit."""
        _, _, _, api = stack
        for _ in range(3):
            api.post(
                "/v1/slices",
                body=slice_body(throughput_mbps=2.0),
                headers={"X-Tenant-Id": "noisy"},
            )
        api.post("/v1/slices", body=slice_body(), headers={"X-Tenant-Id": "quiet"})
        page = api.get("/v1/events?limit=1", headers={"X-Tenant-Id": "quiet"}).body
        assert len(page["events"]) == 1
        assert page["events"][0]["tenant_id"] == "quiet"

    def test_cancel_emits_event(self, stack):
        _, _, _, api = stack
        created = api.post("/v1/slices", body=slice_body()).body
        response = api.delete(f"/v1/slices/{created['slice_id']}")
        assert response.ok
        assert response.body["state"] == "cancelled"
        assert response.body["refund"] == pytest.approx(100.0)
        types = [e["type"] for e in api.get("/v1/events").body["events"]]
        assert "slice.cancelled" in types

    def test_bad_since_400(self, stack):
        _, _, _, api = stack
        assert api.get("/v1/events?since=yesterday").status == 400


class TestObservability:
    def test_dashboard_and_domains_json_safe(self, stack):
        sim, _, _, api = stack
        api.post("/v1/slices", body=slice_body())
        sim.run_until(120.0)
        dashboard = api.get("/v1/dashboard")
        assert dashboard.ok
        assert dashboard.json()
        for domain in ("ran", "transport", "cloud"):
            response = api.get(f"/v1/domains/{domain}")
            assert response.ok
            assert response.json()
        assert api.get("/v1/domains/quantum").status == 404

    def test_whatif_route(self, stack):
        _, _, _, api = stack
        response = api.post(
            "/v1/whatif",
            body={
                "service_type": "urllc",
                "throughput_mbps": 5.0,
                "max_latency_ms": 8.0,
                "duration_s": 600.0,
            },
        )
        assert response.ok
        assert response.body["would_admit"]


class TestModifyAndDelete:
    def test_patch_rescales(self, stack):
        sim, orchestrator, _, api = stack
        created = api.post("/v1/slices", body=slice_body()).body
        sim.run_until(10.0)
        response = api.patch(
            f"/v1/slices/{created['slice_id']}", body={"throughput_mbps": 12.0}
        )
        assert response.ok
        assert orchestrator.slice(created["slice_id"]).request.sla.throughput_mbps == 12.0

    def test_patch_infeasible_enveloped_409(self, stack):
        sim, _, _, api = stack
        created = api.post("/v1/slices", body=slice_body()).body
        sim.run_until(10.0)
        response = api.patch(
            f"/v1/slices/{created['slice_id']}", body={"throughput_mbps": 500.0}
        )
        assert response.status == 409
        assert response.body["error"]["code"] == "modification_rejected"

    def test_delete_active_then_conflict(self, stack):
        sim, _, _, api = stack
        created = api.post("/v1/slices", body=slice_body()).body
        sim.run_until(10.0)
        assert api.delete(f"/v1/slices/{created['slice_id']}").ok
        second = api.delete(f"/v1/slices/{created['slice_id']}")
        assert second.status == 409
        assert second.body["error"]["code"] == "conflict"
