"""Tests for per-tenant quota enforcement in the service layer
(429 ``quota_exceeded`` typed errors)."""

from __future__ import annotations

import pytest

from repro.api.service import QuotaExceeded, SliceService, TenantQuota
from repro.api.v1 import build_v1_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def build_stack(testbed, quotas=None, default_quota=None):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=6),
    )
    orchestrator.start()
    service = SliceService(
        orchestrator, quotas=quotas, default_quota=default_quota
    )
    return sim, orchestrator, service, build_v1_api(service)


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestSliceQuota:
    def test_max_active_slices_enforced(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        first = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        assert first.status == 201
        second = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        assert second.status == 429
        assert second.body["error"]["code"] == "quota_exceeded"
        assert "slice quota" in second.body["error"]["message"]

    def test_quota_scoped_to_tenant(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201
        # A different tenant has no quota and is unaffected.
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t2"}
        ).status == 201

    def test_aggregate_mbps_enforced(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_aggregate_mbps=15.0)}
        )
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201
        over = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        assert over.status == 429
        assert "aggregate throughput" in over.body["error"]["message"]

    def test_quota_frees_after_teardown(self, testbed):
        sim, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        created = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        slice_id = created.body["slice_id"]
        sim.run_until(10.0)  # reach ACTIVE
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 429
        assert api.delete(
            f"/v1/slices/{slice_id}", headers={"X-Tenant-Id": "t1"}
        ).status == 200
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201

    def test_default_quota_applies_to_unlisted_tenants(self, testbed):
        _, _, _, api = build_stack(
            testbed,
            quotas={"vip": TenantQuota()},  # explicit: unlimited
            default_quota=TenantQuota(max_active_slices=1),
        )
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "small"}
        ).status == 201
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "small"}
        ).status == 429
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "vip"}
        ).status == 201
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "vip"}
        ).status == 201

    def test_batch_mode_checked_at_submit_time(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201
        queued = api.post(
            "/v1/slices?mode=batch", slice_body(), headers={"X-Tenant-Id": "t1"}
        )
        assert queued.status == 429

    def test_queued_batch_operations_count_toward_quota(self, testbed):
        """N submissions in one broker window must not all slip under
        the quota: pending operations occupy quota slots."""
        sim, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        first = api.post(
            "/v1/slices?mode=batch", slice_body(), headers={"X-Tenant-Id": "t1"}
        )
        assert first.status == 202
        second = api.post(
            "/v1/slices?mode=batch", slice_body(), headers={"X-Tenant-Id": "t1"}
        )
        assert second.status == 429
        # After the window flushes and the slice installs, still 1/1.
        sim.run_until(400.0)
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 429

    def test_bookings_checked_against_quota(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201
        body = slice_body(start_time=1_000.0)
        booked = api.post("/v1/bookings", body, headers={"X-Tenant-Id": "t1"})
        assert booked.status == 429

    def test_pending_bookings_count_toward_quota(self, testbed):
        """Queueing future capacity must not bypass the quota."""
        sim, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        body = slice_body(start_time=1_000.0)
        assert api.post(
            "/v1/bookings", body, headers={"X-Tenant-Id": "t1"}
        ).status == 201
        # The admitted-but-uninstalled booking occupies the quota slot.
        assert api.post(
            "/v1/bookings", body, headers={"X-Tenant-Id": "t1"}
        ).status == 429
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 429
        # Once installed, the slice (not the booking) holds the slot —
        # no double counting, still exactly one unit of quota.
        sim.run_until(1_010.0)
        over = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        assert over.status == 429
        assert "1/1 active" in over.body["error"]["message"]

    def test_cancelling_booking_frees_quota(self, testbed):
        _, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=1)}
        )
        body = slice_body(start_time=1_000.0)
        booked = api.post("/v1/bookings", body, headers={"X-Tenant-Id": "t1"})
        assert booked.status == 201
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 429
        assert api.delete(
            f"/v1/bookings/{booked.body['booking_id']}",
            headers={"X-Tenant-Id": "t1"},
        ).status == 200
        assert api.post(
            "/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"}
        ).status == 201

    def test_rescale_checked_against_aggregate_quota(self, testbed):
        """create-small-then-PATCH-big must not bypass the quota."""
        sim, _, _, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_aggregate_mbps=20.0)}
        )
        created = api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        slice_id = created.body["slice_id"]
        sim.run_until(10.0)  # reach ACTIVE
        over = api.patch(
            f"/v1/slices/{slice_id}",
            {"throughput_mbps": 25.0},
            headers={"X-Tenant-Id": "t1"},
        )
        assert over.status == 429
        assert over.body["error"]["code"] == "quota_exceeded"
        within = api.patch(
            f"/v1/slices/{slice_id}",
            {"throughput_mbps": 18.0},
            headers={"X-Tenant-Id": "t1"},
        )
        assert within.status == 200
        # Shrinking is always allowed.
        assert api.patch(
            f"/v1/slices/{slice_id}",
            {"throughput_mbps": 5.0},
            headers={"X-Tenant-Id": "t1"},
        ).status == 200

    def test_service_raises_typed_error(self, testbed):
        _, _, service, _ = build_stack(
            testbed, default_quota=TenantQuota(max_active_slices=0)
        )
        with pytest.raises(QuotaExceeded) as excinfo:
            service.create_slice(slice_body(), header_tenant="t1")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exceeded"

    def test_quota_usage_reporting(self, testbed):
        _, _, service, api = build_stack(
            testbed, quotas={"t1": TenantQuota(max_active_slices=5)}
        )
        api.post("/v1/slices", slice_body(), headers={"X-Tenant-Id": "t1"})
        usage = service.quota_usage("t1")
        assert usage["active_slices"] == 1
        assert usage["aggregate_mbps"] == 10.0
