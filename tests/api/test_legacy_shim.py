"""Parity tests: the deprecated unversioned routes answer through the
same SliceService as /v1 and keep their historical shapes."""

from __future__ import annotations

import pytest

from repro.api.routes import build_orchestrator_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=2),
    )
    orchestrator.start()
    return sim, orchestrator, build_orchestrator_api(orchestrator)


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
        "tenant_id": "tester",
    }
    body.update(overrides)
    return body


class TestLegacyShapes:
    def test_post_keeps_flat_shape_with_real_slice_id(self, stack):
        _, orchestrator, api = stack
        response = api.post("/slices", body=slice_body())
        assert response.status == 201
        assert set(response.body) == {"request_id", "slice_id", "admitted", "reason"}
        # Real id from the decision: it resolves in the orchestrator.
        assert orchestrator.slice(response.body["slice_id"]).state.value == "deploying"

    def test_post_rejection_slice_id_none(self, stack):
        _, _, api = stack
        response = api.post("/slices", body=slice_body(throughput_mbps=500.0))
        assert response.status == 409
        assert response.body["slice_id"] is None

    def test_errors_stay_flat_strings(self, stack):
        _, _, api = stack
        response = api.post("/slices", body={"service_type": "embb"})
        assert response.status == 400
        assert isinstance(response.body["error"], str)
        assert "missing" in response.body["error"]
        assert api.get("/slices/slice-999999").body["error"].startswith("unknown slice")

    def test_listing_matches_v1(self, stack):
        _, _, api = stack
        api.post("/slices", body=slice_body())
        api.post("/slices", body=slice_body(tenant_id="other"))
        legacy = api.get("/slices").body["slices"]
        v1 = api.get("/v1/slices").body["slices"]
        assert legacy == v1

    def test_detail_matches_v1(self, stack):
        _, _, api = stack
        created = api.post("/slices", body=slice_body()).body
        legacy = api.get(f"/slices/{created['slice_id']}").body
        v1 = api.get(f"/v1/slices/{created['slice_id']}").body
        assert legacy == v1

    def test_dashboard_matches_v1(self, stack):
        sim, _, api = stack
        api.post("/slices", body=slice_body())
        sim.run_until(120.0)
        assert api.get("/dashboard").body == api.get("/v1/dashboard").body

    def test_domain_matches_v1(self, stack):
        _, _, api = stack
        for domain in ("ran", "transport", "cloud"):
            assert (
                api.get(f"/domains/{domain}").body
                == api.get(f"/v1/domains/{domain}").body
            )

    def test_whatif_matches_v1(self, stack):
        _, _, api = stack
        body = {
            "service_type": "urllc",
            "throughput_mbps": 5.0,
            "max_latency_ms": 8.0,
            "duration_s": 600.0,
        }
        legacy = api.post("/whatif", body=body).body
        v1 = api.post("/v1/whatif", body=body).body
        # request_id differs per probe; everything else must match.
        legacy.pop("request_id")
        v1.pop("request_id")
        assert legacy == v1

    def test_legacy_delete_cancels_pending(self, stack):
        _, _, api = stack
        created = api.post("/slices", body=slice_body()).body
        response = api.delete(f"/slices/{created['slice_id']}")
        assert response.status == 200
        assert response.body["state"] == "cancelled"

    def test_shared_service_state(self, stack):
        """A slice created through the legacy route is visible via v1
        and vice versa — one service, one orchestrator."""
        sim, _, api = stack
        legacy_id = api.post("/slices", body=slice_body()).body["slice_id"]
        v1_id = api.post("/v1/slices", body=slice_body()).body["slice_id"]
        listing = api.get("/v1/slices").body
        ids = {s["slice_id"] for s in listing["slices"]}
        assert {legacy_id, v1_id} <= ids
