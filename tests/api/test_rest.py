"""Tests for the in-process REST router."""

from __future__ import annotations

import pytest

from repro.api.rest import ApiError, Response, RestApi


@pytest.fixture
def api():
    router = RestApi()
    router.route("GET", "/things", lambda request: {"things": []})
    router.route(
        "GET", "/things/{thing_id}", lambda request: {"id": request.params["thing_id"]}
    )
    router.route(
        "POST",
        "/things",
        lambda request: Response(status=201, body={"created": request.body}),
    )
    return router


def test_static_route(api):
    response = api.get("/things")
    assert response.ok
    assert response.body == {"things": []}


def test_path_params_extracted(api):
    response = api.get("/things/42")
    assert response.body == {"id": "42"}


def test_post_with_body(api):
    response = api.post("/things", body={"name": "x"})
    assert response.status == 201
    assert response.body == {"created": {"name": "x"}}


def test_404_on_unknown_path(api):
    assert api.get("/nope").status == 404


def test_405_on_wrong_method(api):
    assert api.delete("/things").status == 405


def test_handler_exception_becomes_500(api):
    def boom(request):
        raise RuntimeError("kaput")

    api.route("GET", "/boom", boom)
    response = api.get("/boom")
    assert response.status == 500
    assert "kaput" in response.body["error"]


def test_duplicate_route_rejected(api):
    with pytest.raises(ApiError):
        api.route("GET", "/things", lambda request: {})


def test_template_must_start_with_slash():
    with pytest.raises(ApiError):
        RestApi().route("GET", "things", lambda request: {})


def test_routes_listing(api):
    assert "GET /things" in api.routes()
    assert "POST /things" in api.routes()


def test_response_json_serialization():
    response = Response(status=200, body={"b": 2, "a": 1})
    assert response.json() == '{"a": 1, "b": 2}'


def test_response_json_robust_to_numpy():
    """Numpy scalars/arrays leak out of orchestrator snapshots and
    domain utilization dicts; Response.json() must coerce them."""
    import json

    import numpy as np

    response = Response(
        status=200,
        body={
            "int": np.int64(3),
            "float": np.float32(1.5),
            "bool": np.bool_(True),
            "array": np.array([1.0, 2.0]),
            "nested": {"more": [np.int32(7)]},
        },
    )
    decoded = json.loads(response.json())
    assert decoded == {
        "int": 3,
        "float": 1.5,
        "bool": True,
        "array": [1.0, 2.0],
        "nested": {"more": [7]},
    }


def test_response_json_still_rejects_unserializable():
    import pytest as _pytest

    with _pytest.raises(TypeError):
        Response(status=200, body={"x": object()}).json()


def test_param_does_not_match_across_segments(api):
    assert api.get("/things/1/extra").status == 404


def test_query_string_parsed(api):
    def echo_query(request):
        return {"query": request.query}

    api.route("GET", "/echo", echo_query)
    response = api.get("/echo?a=1&b=two&empty=")
    assert response.body == {"query": {"a": "1", "b": "two", "empty": ""}}


def test_query_string_does_not_break_routing(api):
    assert api.get("/things/42?verbose=1").body == {"id": "42"}


def test_headers_case_insensitive(api):
    def echo_tenant(request):
        return {"tenant": request.header("X-Tenant-Id")}

    api.route("GET", "/whoami", echo_tenant)
    response = api.get("/whoami", headers={"X-TENANT-ID": "alpha"})
    assert response.body == {"tenant": "alpha"}
    assert api.get("/whoami").body == {"tenant": None}
