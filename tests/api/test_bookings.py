"""Tests for advance bookings over the northbound API
(``POST /v1/bookings`` → ``Orchestrator.submit_advance``)."""

from __future__ import annotations

import pytest

from repro.api.service import SliceService
from repro.api.v1 import build_v1_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=5),
    )
    orchestrator.start()
    service = SliceService(orchestrator)
    api = build_v1_api(service)
    return sim, orchestrator, api


def booking_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 10.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "start_time": 1_000.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestCreateBooking:
    def test_booking_accepted_and_listed(self, stack):
        _, _, api = stack
        response = api.post(
            "/v1/bookings", booking_body(), headers={"X-Tenant-Id": "t1"}
        )
        assert response.status == 201
        assert response.body["admitted"] is True
        assert response.body["start_time"] == 1_000.0
        booking_id = response.body["booking_id"]
        listing = api.get("/v1/bookings")
        assert listing.status == 200
        assert listing.body["count"] == 1
        entry = listing.body["bookings"][0]
        assert entry["booking_id"] == booking_id
        assert entry["tenant_id"] == "t1"
        assert entry["start"] == 1_000.0
        assert entry["demand"]["mbps"] > 0.0

    def test_immediate_slices_not_listed_as_bookings(self, stack):
        """The calendar carries every immediate slice's commitment too;
        the bookings listing must show only actual bookings."""
        _, _, api = stack
        created = api.post(
            "/v1/slices",
            {k: v for k, v in booking_body().items() if k != "start_time"},
            headers={"X-Tenant-Id": "t1"},
        )
        assert created.status == 201
        assert api.get("/v1/bookings").body["count"] == 0

    def test_listing_is_tenant_scoped(self, stack):
        _, _, api = stack
        api.post("/v1/bookings", booking_body(), headers={"X-Tenant-Id": "t1"})
        api.post("/v1/bookings", booking_body(), headers={"X-Tenant-Id": "t2"})
        mine = api.get("/v1/bookings", headers={"X-Tenant-Id": "t1"})
        assert mine.body["count"] == 1
        assert mine.body["bookings"][0]["tenant_id"] == "t1"
        both = api.get("/v1/bookings")
        assert both.body["count"] == 2

    def test_booked_slice_installs_at_start_time(self, stack):
        sim, orchestrator, api = stack
        response = api.post(
            "/v1/bookings",
            booking_body(start_time=500.0),
            headers={"X-Tenant-Id": "t1"},
        )
        assert response.status == 201
        sim.run_until(520.0)
        active = orchestrator.active_slices()
        assert len(active) == 1
        assert active[0].request.tenant_id == "t1"

    def test_calendar_conflict_is_409(self, stack):
        _, _, api = stack
        # Each booking of 80 Mb/s needs ~163 of the 200 fleet PRBs over
        # the same window — the second cannot be promised.
        first = api.post("/v1/bookings", booking_body(throughput_mbps=80.0))
        assert first.status == 201
        second = api.post("/v1/bookings", booking_body(throughput_mbps=80.0))
        assert second.status == 409
        assert second.body["error"]["code"] == "calendar_conflict"
        assert second.body["admitted"] is False

    def test_start_time_in_past_is_400(self, stack):
        sim, _, api = stack
        sim.run_until(100.0)
        response = api.post("/v1/bookings", booking_body(start_time=50.0))
        assert response.status == 400
        assert response.body["error"]["code"] == "invalid_value"
        assert response.body["error"]["field"] == "start_time"

    def test_missing_start_time_is_400(self, stack):
        _, _, api = stack
        body = booking_body()
        del body["start_time"]
        response = api.post("/v1/bookings", body)
        assert response.status == 400
        assert response.body["error"]["code"] == "missing_field"

    def test_cancel_booking_frees_window(self, stack):
        sim, orchestrator, api = stack
        created = api.post(
            "/v1/bookings",
            booking_body(throughput_mbps=80.0),
            headers={"X-Tenant-Id": "t1"},
        )
        booking_id = created.body["booking_id"]
        # The window is promised — an identical booking conflicts...
        assert api.post(
            "/v1/bookings", booking_body(throughput_mbps=80.0)
        ).status == 409
        cancelled = api.delete(
            f"/v1/bookings/{booking_id}", headers={"X-Tenant-Id": "t1"}
        )
        assert cancelled.status == 200
        assert cancelled.body == {"booking_id": booking_id, "state": "cancelled"}
        # ...and is reusable once cancelled.
        assert api.post(
            "/v1/bookings", booking_body(throughput_mbps=80.0)
        ).status == 201
        # The scheduled install fires harmlessly: the cancelled booking
        # never produces a slice record for its tenant.
        sim.run_until(1_100.0)
        assert not orchestrator.has_slice(booking_id.replace("req-", "slice-"))
        assert all(
            s.request.tenant_id != "t1" for s in orchestrator.all_slices()
        )

    def test_cancel_booking_tenant_scoped(self, stack):
        _, _, api = stack
        created = api.post(
            "/v1/bookings", booking_body(), headers={"X-Tenant-Id": "t1"}
        )
        booking_id = created.body["booking_id"]
        foreign = api.delete(
            f"/v1/bookings/{booking_id}", headers={"X-Tenant-Id": "t2"}
        )
        assert foreign.status == 404
        assert api.delete(f"/v1/bookings/nope").status == 404

    def test_cancel_after_install_conflicts(self, stack):
        sim, _, api = stack
        created = api.post(
            "/v1/bookings",
            booking_body(start_time=100.0),
            headers={"X-Tenant-Id": "t1"},
        )
        booking_id = created.body["booking_id"]
        sim.run_until(150.0)  # install fired; the booking became a slice
        response = api.delete(
            f"/v1/bookings/{booking_id}", headers={"X-Tenant-Id": "t1"}
        )
        assert response.status == 409
        assert "manage the slice" in response.body["error"]["message"]

    def test_booking_released_from_listing_after_expiry(self, stack):
        sim, orchestrator, api = stack
        api.post("/v1/bookings", booking_body(start_time=200.0, duration_s=300.0))
        assert api.get("/v1/bookings").body["count"] == 1
        sim.run_until(600.0)
        assert not orchestrator.active_slices()
        assert api.get("/v1/bookings").body["count"] == 0
