"""Tests for the orchestrator's REST surface."""

from __future__ import annotations

import pytest

from repro.api.routes import build_orchestrator_api
from repro.core.orchestrator import Orchestrator
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def stack(testbed):
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=2),
    )
    orchestrator.start()
    return sim, orchestrator, build_orchestrator_api(orchestrator)


def slice_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 15.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
        "tenant_id": "tester",
    }
    body.update(overrides)
    return body


class TestPostSlices:
    def test_create_slice(self, stack):
        sim, orchestrator, api = stack
        response = api.post("/slices", body=slice_body())
        assert response.status == 201
        assert response.body["admitted"]
        assert response.body["slice_id"].startswith("slice-")

    def test_rejection_is_409(self, stack):
        sim, orchestrator, api = stack
        response = api.post("/slices", body=slice_body(throughput_mbps=500.0))
        assert response.status == 409
        assert not response.body["admitted"]

    def test_missing_fields_400(self, stack):
        _, _, api = stack
        response = api.post("/slices", body={"service_type": "embb"})
        assert response.status == 400
        assert "missing" in response.body["error"]

    def test_unknown_service_type_400(self, stack):
        _, _, api = stack
        response = api.post("/slices", body=slice_body(service_type="warp-drive"))
        assert response.status == 400

    def test_invalid_sla_400(self, stack):
        _, _, api = stack
        response = api.post("/slices", body=slice_body(throughput_mbps=-5.0))
        assert response.status == 400


class TestGetSlices:
    def test_list_and_detail(self, stack):
        sim, orchestrator, api = stack
        created = api.post("/slices", body=slice_body()).body
        listing = api.get("/slices")
        assert len(listing.body["slices"]) == 1
        detail = api.get(f"/slices/{created['slice_id']}")
        assert detail.status == 200
        assert detail.body["tenant"] == "tester"

    def test_unknown_slice_404(self, stack):
        _, _, api = stack
        assert api.get("/slices/slice-999999").status == 404


class TestDeleteSlice:
    def test_delete_active_slice(self, stack):
        sim, orchestrator, api = stack
        created = api.post("/slices", body=slice_body()).body
        sim.run_until(10.0)  # let it deploy
        response = api.delete(f"/slices/{created['slice_id']}")
        assert response.status == 200
        detail = api.get(f"/slices/{created['slice_id']}")
        assert detail.body["state"] == "expired"

    def test_delete_before_active_cancels(self, stack):
        """Deleting a slice still pending activation cancels it with a
        full refund instead of answering a blanket 409."""
        sim, orchestrator, api = stack
        created = api.post("/slices", body=slice_body()).body
        response = api.delete(f"/slices/{created['slice_id']}")
        assert response.status == 200
        assert response.body["state"] == "cancelled"
        assert response.body["refund"] == pytest.approx(100.0)
        detail = api.get(f"/slices/{created['slice_id']}")
        assert detail.body["state"] == "cancelled"

    def test_delete_terminal_slice_409(self, stack):
        sim, orchestrator, api = stack
        created = api.post("/slices", body=slice_body()).body
        sim.run_until(10.0)
        assert api.delete(f"/slices/{created['slice_id']}").status == 200
        response = api.delete(f"/slices/{created['slice_id']}")
        assert response.status == 409

    def test_delete_unknown_404(self, stack):
        _, _, api = stack
        assert api.delete("/slices/slice-999999").status == 404


class TestDashboardRoutes:
    def test_dashboard_snapshot(self, stack):
        sim, orchestrator, api = stack
        api.post("/slices", body=slice_body())
        sim.run_until(120.0)
        response = api.get("/dashboard")
        assert response.ok
        assert response.body["active"] == 1
        assert response.json()  # JSON-serializable

    def test_domain_views(self, stack):
        _, _, api = stack
        for domain in ("ran", "transport", "cloud"):
            response = api.get(f"/domains/{domain}")
            assert response.ok
            assert response.body["domain"] == domain

    def test_unknown_domain_404(self, stack):
        _, _, api = stack
        assert api.get("/domains/quantum").status == 404
