"""Tests for the declarative v1 request schemas and error envelope."""

from __future__ import annotations

import pytest

from repro.api.schemas import (
    SLICE_CREATE,
    SLICE_MODIFY,
    ValidationError,
    WHAT_IF,
    error_body,
    parse_pagination,
)
from repro.core.slices import ServiceType


def create_body(**overrides):
    body = {
        "service_type": "embb",
        "throughput_mbps": 15.0,
        "max_latency_ms": 50.0,
        "duration_s": 3_600.0,
        "price": 100.0,
        "penalty_rate": 1.0,
    }
    body.update(overrides)
    return body


class TestSliceCreateSchema:
    def test_valid_body_parses_with_defaults(self):
        parsed = SLICE_CREATE.parse(create_body())
        assert parsed["service_type"] is ServiceType.EMBB
        assert parsed["throughput_mbps"] == 15.0
        assert parsed["availability"] == 0.95
        assert parsed["n_users"] == 10
        assert parsed["tenant_id"] is None

    def test_missing_fields_reported_together(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse({"service_type": "embb"})
        exc = exc_info.value
        assert exc.code == "missing_field"
        assert "throughput_mbps" in exc.message
        assert "price" in exc.message
        assert exc.field == "throughput_mbps"

    def test_unknown_service_type(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(service_type="warp-drive"))
        exc = exc_info.value
        assert exc.code == "invalid_value"
        assert exc.field == "service_type"
        assert "embb" in exc.message

    def test_non_numeric_throughput(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(throughput_mbps="fast"))
        assert exc_info.value.code == "invalid_type"
        assert exc_info.value.field == "throughput_mbps"

    def test_boolean_is_not_a_number(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(price=True))
        assert exc_info.value.code == "invalid_type"

    def test_negative_throughput_out_of_range(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(throughput_mbps=-5.0))
        assert exc_info.value.code == "invalid_value"

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", float("nan"), float("inf")])
    def test_non_finite_floats_rejected(self, bad):
        """NaN/Infinity pass naive range checks (NaN comparisons are
        all False) — the schema must reject them outright."""
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(throughput_mbps=bad))
        assert exc_info.value.code == "invalid_value"
        with pytest.raises(ValidationError):
            SLICE_CREATE.parse(create_body(price=bad))

    def test_non_finite_int_rejected(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(n_users=float("nan")))
        assert exc_info.value.code == "invalid_value"

    def test_availability_above_one_rejected(self):
        with pytest.raises(ValidationError):
            SLICE_CREATE.parse(create_body(availability=1.5))

    def test_fractional_n_users_rejected(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(create_body(n_users=2.5))
        assert exc_info.value.code == "invalid_type"

    def test_numeric_strings_are_coerced(self):
        parsed = SLICE_CREATE.parse(create_body(throughput_mbps="15.5", n_users="4"))
        assert parsed["throughput_mbps"] == 15.5
        assert parsed["n_users"] == 4

    def test_unknown_fields_ignored(self):
        parsed = SLICE_CREATE.parse(create_body(flux_capacitor=True))
        assert "flux_capacitor" not in parsed

    def test_non_dict_body_rejected(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_CREATE.parse(["not", "a", "dict"])
        assert exc_info.value.code == "invalid_body"


class TestOtherSchemas:
    def test_modify_requires_throughput(self):
        with pytest.raises(ValidationError) as exc_info:
            SLICE_MODIFY.parse({})
        assert exc_info.value.code == "missing_field"
        assert SLICE_MODIFY.parse({"throughput_mbps": 25})["throughput_mbps"] == 25.0

    def test_whatif_defaults(self):
        parsed = WHAT_IF.parse(create_body())
        assert parsed["price"] == 100.0
        minimal = {
            "service_type": "urllc",
            "throughput_mbps": 5.0,
            "max_latency_ms": 8.0,
            "duration_s": 600.0,
        }
        parsed = WHAT_IF.parse(minimal)
        assert parsed["price"] == 0.0
        assert parsed["penalty_rate"] == 0.0


class TestErrorEnvelope:
    def test_envelope_shape(self):
        body = error_body("invalid_type", "nope", field="price")
        assert body == {
            "error": {"code": "invalid_type", "message": "nope", "field": "price"}
        }

    def test_envelope_without_field(self):
        body = error_body("not_found", "gone")
        assert "field" not in body["error"]

    def test_validation_error_to_response(self):
        response = ValidationError("invalid_value", "bad", field="x").to_response()
        assert response.status == 400
        assert response.body["error"]["code"] == "invalid_value"


class TestPagination:
    def test_defaults(self):
        assert parse_pagination({}) == (0, 50)

    def test_explicit_values(self):
        assert parse_pagination({"offset": "5", "limit": "2"}) == (5, 2)

    def test_limit_clamped(self):
        assert parse_pagination({"limit": "100000"}) == (0, 500)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError) as exc_info:
            parse_pagination({"offset": "-1"})
        assert exc_info.value.code == "invalid_parameter"

    def test_non_integer_limit_rejected(self):
        with pytest.raises(ValidationError):
            parse_pagination({"limit": "lots"})

    def test_zero_limit_rejected(self):
        with pytest.raises(ValidationError):
            parse_pagination({"limit": "0"})
