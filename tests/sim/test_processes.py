"""Tests for PeriodicProcess."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError
from repro.sim.processes import PeriodicProcess


def test_process_fires_periodically(sim):
    fired = []
    proc = PeriodicProcess(sim, 10.0, lambda: fired.append(sim.now))
    proc.start()
    sim.run_until(35.0)
    assert fired == [10.0, 20.0, 30.0]
    assert proc.fire_count == 3


def test_immediate_process_fires_at_start(sim):
    fired = []
    proc = PeriodicProcess(sim, 10.0, lambda: fired.append(sim.now), immediate=True)
    proc.start()
    sim.run_until(15.0)
    assert fired == [0.0, 10.0]


def test_stop_halts_firings(sim):
    fired = []
    proc = PeriodicProcess(sim, 5.0, lambda: fired.append(sim.now))
    proc.start()
    sim.schedule(12.0, proc.stop)
    sim.run_until(50.0)
    assert fired == [5.0, 10.0]
    assert not proc.running


def test_restart_after_stop(sim):
    fired = []
    proc = PeriodicProcess(sim, 5.0, lambda: fired.append(sim.now))
    proc.start()
    sim.run_until(6.0)
    proc.stop()
    sim.run_until(20.0)
    proc.start()
    sim.run_until(26.0)
    assert fired == [5.0, 25.0]


def test_double_start_is_noop(sim):
    fired = []
    proc = PeriodicProcess(sim, 5.0, lambda: fired.append(sim.now))
    proc.start()
    proc.start()
    sim.run_until(6.0)
    assert fired == [5.0]


def test_nonpositive_period_rejected(sim):
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, 0.0, lambda: None)


def test_running_property(sim):
    proc = PeriodicProcess(sim, 5.0, lambda: None)
    assert not proc.running
    proc.start()
    assert proc.running
    proc.stop()
    assert not proc.running
