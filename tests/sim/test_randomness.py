"""Tests for the seeded random-stream registry."""

from __future__ import annotations

import numpy as np

from repro.sim.randomness import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(seed=7).stream("arrivals").random(5)
    b = RandomStreams(seed=7).stream("arrivals").random(5)
    assert np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("arrivals").random(5)
    b = RandomStreams(seed=2).stream("arrivals").random(5)
    assert not np.allclose(a, b)


def test_streams_are_independent_of_creation_order():
    reg1 = RandomStreams(seed=3)
    reg1.stream("x")  # create x first
    a = reg1.stream("y").random(5)
    reg2 = RandomStreams(seed=3)
    b = reg2.stream("y").random(5)  # y created first here
    assert np.allclose(a, b)


def test_distinct_names_give_distinct_streams():
    reg = RandomStreams(seed=5)
    a = reg.stream("a").random(5)
    b = reg.stream("b").random(5)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    reg = RandomStreams(seed=5)
    assert reg.stream("cache") is reg.stream("cache")


def test_names_tracks_created_streams():
    reg = RandomStreams(seed=0)
    reg.stream("one")
    reg.stream("two")
    assert reg.names() == ["one", "two"]


def test_fork_changes_draws():
    reg = RandomStreams(seed=9)
    child = reg.fork(1)
    assert child.seed != reg.seed
    a = reg.stream("s").random(3)
    b = child.stream("s").random(3)
    assert not np.allclose(a, b)


def test_fork_is_deterministic():
    a = RandomStreams(seed=9).fork(4).stream("s").random(3)
    b = RandomStreams(seed=9).fork(4).stream("s").random(3)
    assert np.allclose(a, b)
