"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator, every


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_schedule_fires_at_correct_time(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run_until(5.0)
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [3.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(2.0, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run_until(0.0)
        assert fired == [True]

    def test_run_until_advances_clock_past_queue(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_run_backwards_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_events_beyond_horizon_not_fired(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(15.0)
        assert fired == [True]


class TestOrdering:
    def test_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run_until(2.0)
        assert order == list("abcde")

    def test_priority_breaks_ties(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=10)
        sim.schedule(1.0, lambda: order.append("high"), priority=0)
        sim.run_until(2.0)
        assert order == ["high", "low"]

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run_until(5.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1


class TestExecution:
    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_run_returns_event_count(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 5

    def test_run_max_events(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_stop_halts_run(self, sim):
        fired = []

        def stopper():
            fired.append(sim.now)
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_events_processed_counter(self, sim):
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 4

    def test_callback_can_schedule_more_events(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.run_until(10.0)
        assert fired == [0, 1, 2, 3]


class TestTrace:
    def test_trace_records_names(self, sim):
        sim.enable_trace()
        sim.schedule(1.0, lambda: None, name="alpha")
        sim.schedule(2.0, lambda: None, name="beta")
        sim.run_until(5.0)
        assert sim.trace() == [(1.0, "alpha"), (2.0, "beta")]

    def test_trace_empty_without_enable(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        assert sim.trace() == []


class TestEvery:
    def test_periodic_fires_at_period_multiples(self, sim):
        fired = []
        every(sim, 2.0, lambda: fired.append(sim.now))
        sim.run_until(7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_periodic_stop(self, sim):
        fired = []
        handle = every(sim, 1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, handle.stop)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_periodic_custom_start(self, sim):
        fired = []
        every(sim, 5.0, lambda: fired.append(sim.now), start=1.0)
        sim.run_until(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_nonpositive_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            every(sim, 0.0, lambda: None)
