"""Benchmark-drift smoke: every bench module must stay importable.

Benchmarks are not part of the tier-1 run (they are slow), so an API
rename can silently strand them.  Importing each module catches stale
imports and signature drift cheaply; CI runs the same check as a
dedicated job.
"""

import importlib.util
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(BENCH_DIR.glob("bench_*.py")) + [
    BENCH_DIR / "failover_drill.py"
]


def test_bench_modules_discovered():
    assert len(BENCH_MODULES) >= 11  # D1..D11 at time of writing


@pytest.mark.parametrize("path", BENCH_MODULES, ids=lambda p: p.stem)
def test_bench_module_imports(path):
    pytest.importorskip("pytest_benchmark", reason="bench deps not installed")
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
