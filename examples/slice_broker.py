#!/usr/bin/env python
"""The full slice-broker workflow: batch windows, advance bookings,
city-scale traffic traces.

This example combines the three broker-grade features on top of the
plain demo flow:

1. walk-in requests arrive through the versioned northbound API
   (``POST /v1/slices?mode=batch`` → 202 + operation id) and are decided
   in 5-minute *batch windows* by the revenue-maximizing knapsack
   (ref [3]'s broker model); tenants poll ``GET /v1/operations/{op_id}``
   for the verdict,
2. a stadium operator books a large eMBB slice *in advance* for the
   evening event — the calendar protects that capacity from walk-ins,
3. the stadium's traffic follows a synthetic Milan-grid-like city trace
   (residential land use), which the forecaster learns and the
   overbooking engine exploits.

Run:  python examples/slice_broker.py
"""

from __future__ import annotations

from repro.api.routes import build_orchestrator_api
from repro.core.admission import KnapsackPolicy
from repro.core.broker import SliceBroker
from repro.core.forecasting import HoltWintersForecaster
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import ForecastOverbooking
from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.dashboard.dashboard import Dashboard
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.traces import SyntheticCityTrace

HOUR = 3_600.0


def main() -> None:
    testbed = build_testbed()
    sim = Simulator()
    streams = RandomStreams(seed=77)
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=ForecastOverbooking(quantile=0.95),
        forecaster_factory=lambda: HoltWintersForecaster(season_length=24),
        config=OrchestratorConfig(
            monitoring_epoch_s=300.0,
            reconfig_every_epochs=4,
            min_history_for_forecast=12,
        ),
        streams=streams,
    )
    orchestrator.start()
    broker = SliceBroker(orchestrator, window_s=300.0, policy=KnapsackPolicy())
    api = build_orchestrator_api(orchestrator, broker=broker)

    # --- 1. the stadium books tonight's event slice in advance ---------
    stadium = SliceRequest(
        tenant_id="stadium-events",
        service_type=ServiceType.EMBB,
        sla=SLA(throughput_mbps=35.0, max_latency_ms=60.0, duration_s=4 * HOUR),
        price=600.0,
        penalty_rate=3.0,
    )
    stadium_profile = SyntheticCityTrace("residential", noise_sigma=0.1).profile(
        35.0, n_days=1, rng=streams.stream("stadium-trace")
    )
    decision = orchestrator.submit_advance(
        stadium, stadium_profile, start_time=18.0 * HOUR
    )
    print(f"advance booking for t=18h: {decision.reason} (admitted={decision.admitted})\n")

    # --- 2. walk-ins all day, batched through the northbound API --------
    walk_ins = [
        # (hour, tenant, mbps, latency, hours, price)
        (8.0, "officenet", 20.0, 80.0, 9.0, 140.0),
        (8.2, "roadwatch", 10.0, 25.0, 10.0, 170.0),
        (8.4, "cheapcast", 30.0, 90.0, 12.0, 60.0),
        (9.0, "mediclinic", 8.0, 30.0, 10.0, 180.0),
        (12.0, "lunchstream", 15.0, 70.0, 3.0, 45.0),
        (17.5, "eveningtv", 30.0, 90.0, 5.0, 110.0),
    ]
    operations: list = []
    for hour, tenant, mbps, latency, hours, price in walk_ins:
        def submit(tenant=tenant, mbps=mbps, latency=latency, hours=hours, price=price):
            response = api.post(
                "/v1/slices?mode=batch",
                body={
                    "service_type": "embb",
                    "throughput_mbps": mbps,
                    "max_latency_ms": latency,
                    "duration_s": hours * HOUR,
                    "price": price,
                    "penalty_rate": 0.5,
                },
                headers={"X-Tenant-Id": tenant},
            )
            assert response.status == 202, response.body
            operations.append((tenant, response.body["operation_id"]))

        sim.schedule_at(hour * HOUR, submit)

    # --- 3. run the day --------------------------------------------------
    sim.run_until(23.0 * HOUR)

    print("=== batch operations (GET /v1/operations/{op_id}) ===")
    for tenant, op_id in operations:
        op = api.get(f"/v1/operations/{op_id}", headers={"X-Tenant-Id": tenant}).body
        decision = op["decision"] or {}
        print(
            f"  {op_id} {tenant:12s} {op['status']:9s} "
            f"({(decision.get('reason') or 'pending')[:60]})"
        )
    stadium_slice = orchestrator.slice(stadium.request_id.replace("req-", "slice-"))
    print(
        f"\nstadium slice state at 23h: {stadium_slice.state.value} "
        f"(violations {stadium_slice.violation_epochs}/{stadium_slice.served_epochs})"
    )
    print(f"windows flushed: {broker.windows_flushed}\n")
    print(Dashboard(orchestrator).render())


if __name__ == "__main__":
    main()
