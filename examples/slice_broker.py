#!/usr/bin/env python
"""The full slice-broker workflow: batch windows, advance bookings,
city-scale traffic traces.

This example combines the three broker-grade features on top of the
plain demo flow:

1. walk-in requests are decided in 5-minute *batch windows* by the
   revenue-maximizing knapsack (ref [3]'s broker model),
2. a stadium operator books a large eMBB slice *in advance* for the
   evening event — the calendar protects that capacity from walk-ins,
3. every slice's traffic follows a synthetic Milan-grid-like city trace
   (office / residential / transport land uses), which the forecaster
   learns and the overbooking engine exploits.

Run:  python examples/slice_broker.py
"""

from __future__ import annotations

from repro.core.admission import KnapsackPolicy
from repro.core.broker import SliceBroker
from repro.core.forecasting import HoltWintersForecaster
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import ForecastOverbooking
from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.dashboard.dashboard import Dashboard
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.traces import SyntheticCityTrace

HOUR = 3_600.0


def main() -> None:
    testbed = build_testbed()
    sim = Simulator()
    streams = RandomStreams(seed=77)
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=ForecastOverbooking(quantile=0.95),
        forecaster_factory=lambda: HoltWintersForecaster(season_length=24),
        config=OrchestratorConfig(
            monitoring_epoch_s=300.0,
            reconfig_every_epochs=4,
            min_history_for_forecast=12,
        ),
        streams=streams,
    )
    orchestrator.start()
    broker = SliceBroker(orchestrator, window_s=300.0, policy=KnapsackPolicy())

    # --- 1. the stadium books tonight's event slice in advance ---------
    stadium = SliceRequest(
        tenant_id="stadium-events",
        service_type=ServiceType.EMBB,
        sla=SLA(throughput_mbps=35.0, max_latency_ms=60.0, duration_s=4 * HOUR),
        price=600.0,
        penalty_rate=3.0,
    )
    stadium_profile = SyntheticCityTrace("residential", noise_sigma=0.1).profile(
        35.0, n_days=1, rng=streams.stream("stadium-trace")
    )
    decision = orchestrator.submit_advance(
        stadium, stadium_profile, start_time=18.0 * HOUR
    )
    print(f"advance booking for t=18h: {decision.reason} (admitted={decision.admitted})\n")

    # --- 2. walk-ins all day, decided in batch windows ------------------
    walk_ins = [
        # (hour, tenant, land_use, mbps, latency, hours, price)
        (8.0, "officenet", "office", 20.0, 80.0, 9.0, 140.0),
        (8.2, "roadwatch", "transport", 10.0, 25.0, 10.0, 170.0),
        (8.4, "cheapcast", "residential", 30.0, 90.0, 12.0, 60.0),
        (9.0, "mediclinic", "residential", 8.0, 30.0, 10.0, 180.0),
        (12.0, "lunchstream", "office", 15.0, 70.0, 3.0, 45.0),
        (17.5, "eveningtv", "residential", 25.0, 90.0, 5.0, 110.0),
    ]
    for hour, tenant, land_use, mbps, latency, hours, price in walk_ins:
        def submit(tenant=tenant, land_use=land_use, mbps=mbps, latency=latency,
                   hours=hours, price=price):
            request = SliceRequest(
                tenant_id=tenant,
                service_type=ServiceType.EMBB,
                sla=SLA(throughput_mbps=mbps, max_latency_ms=latency, duration_s=hours * HOUR),
                price=price,
                penalty_rate=0.5,
            )
            profile = SyntheticCityTrace(land_use, noise_sigma=0.1).profile(
                mbps, n_days=1, rng=streams.stream(f"trace-{tenant}")
            )
            broker.submit(request, profile)

        sim.schedule_at(hour * HOUR, submit)

    # --- 3. run the day --------------------------------------------------
    sim.run_until(23.0 * HOUR)

    print("=== broker decisions ===")
    for decision in broker.decisions:
        print(f"  {decision.request_id}: {'ACCEPTED' if decision.admitted else 'rejected':8s} ({decision.reason[:60]})")
    stadium_slice = orchestrator.slice(stadium.request_id.replace("req-", "slice-"))
    print(
        f"\nstadium slice state at 23h: {stadium_slice.state.value} "
        f"(violations {stadium_slice.violation_epochs}/{stadium_slice.served_epochs})"
    )
    print(f"windows flushed: {broker.windows_flushed}\n")
    print(Dashboard(orchestrator).render())


if __name__ == "__main__":
    main()
