#!/usr/bin/env python
"""Vertical-industry scenario: automotive and e-health share one network.

The paper's introduction motivates slicing with vertical industries
"such as automotive, e-health".  This example runs both verticals side
by side for a simulated day and shows the properties each one buys:

- every slice lands in the cheapest datacenter that meets its latency
  budget (the core here: its 11.5 ms end-to-end path fits even the
  automotive SLAs, preserving scarce edge capacity for sub-10 ms URLLC),
- the e-health slices (steady telemetry) get overbooked hardest —
  their flat ~40% load is the easiest to forecast,
- all slices keep their violation ratios inside the SLA availability.

Run:  python examples/vertical_slicing.py
"""

from __future__ import annotations

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import ForecastOverbooking
from repro.core.slices import ServiceType
from repro.dashboard.reports import format_table
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.verticals import vertical_for


def main() -> None:
    testbed = build_testbed()
    sim = Simulator()
    streams = RandomStreams(seed=7)
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=ForecastOverbooking(quantile=0.95),
        config=OrchestratorConfig(
            monitoring_epoch_s=300.0,  # 5-minute epochs for a day-long run
            reconfig_every_epochs=6,
            min_history_for_forecast=12,
        ),
        streams=streams,
    )
    orchestrator.start()

    # Two automotive and two e-health slices, drawn from the vertical
    # presets, each lasting the whole day.
    rng = streams.stream("example-verticals")
    submitted = []
    for vertical, tenant in (
        (ServiceType.AUTOMOTIVE, "acme-automotive"),
        (ServiceType.AUTOMOTIVE, "roadside-ops"),
        (ServiceType.EHEALTH, "mediclinic"),
        (ServiceType.EHEALTH, "homecare"),
    ):
        spec = vertical_for(vertical)
        request = spec.sample_request(tenant, rng)
        # Stretch to a full day so the forecaster sees the whole pattern.
        from repro.core.slices import SLA, SliceRequest

        request = SliceRequest(
            tenant_id=request.tenant_id,
            service_type=request.service_type,
            sla=SLA(
                throughput_mbps=request.sla.throughput_mbps,
                max_latency_ms=request.sla.max_latency_ms,
                duration_s=86_400.0,
                availability=request.sla.availability,
            ),
            price=request.price,
            penalty_rate=request.penalty_rate,
            n_users=request.n_users,
        )
        profile = spec.sample_profile(request.sla.throughput_mbps, rng)
        decision = orchestrator.submit(request, profile)
        print(
            f"{tenant:16s} {vertical.value:10s} {request.sla.throughput_mbps:5.1f} Mb/s "
            f"≤{request.sla.max_latency_ms:5.1f} ms  -> "
            f"{'ACCEPTED' if decision.admitted else 'REJECTED'}"
        )
        if decision.admitted:
            submitted.append(request)

    # A simulated day.
    sim.run_until(86_000.0)

    rows = []
    for request in submitted:
        slice_id = request.request_id.replace("req-", "slice-")
        network_slice = orchestrator.slice(slice_id)
        runtime = orchestrator.runtime(slice_id)
        allocation = network_slice.allocation
        rows.append(
            [
                network_slice.request.tenant_id,
                network_slice.request.service_type.value,
                allocation.cloud.dc_id,
                f"{allocation.total_latency_ms:.1f}",
                f"{runtime.effective_fraction:.2f}",
                network_slice.served_epochs,
                f"{network_slice.violation_ratio():.2%}",
            ]
        )
    print("\n=== after one simulated day ===")
    print(
        format_table(
            ["tenant", "vertical", "dc", "e2e_ms", "eff_frac", "epochs", "violations"],
            rows,
        )
    )
    snapshot = orchestrator.snapshot()
    print(
        f"\nmultiplexing gain: {snapshot['multiplexing_gain']:.2f}x   "
        f"net revenue: {snapshot['ledger']['net_revenue']:.2f}   "
        f"penalties: {snapshot['ledger']['total_penalties']:.2f}"
    )


if __name__ == "__main__":
    main()
