#!/usr/bin/env python
"""Capacity planning: where should the operator set the overbooking knob?

Sweeps the fixed overbooking factor (and the adaptive controller) over a
busy simulated afternoon and prints the gain / penalty / net-revenue
table the operator would use to choose an operating point — the
quantitative version of the demo's gains-vs-penalties display.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.core.overbooking import AdaptiveOverbooking, FixedOverbooking, NoOverbooking
from repro.core.slices import ServiceType
from repro.dashboard.reports import format_table
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.traffic.generator import RequestMix


def run_policy(label: str, overbooking) -> list:
    result = run_scenario(
        ScenarioConfig(
            horizon_s=4 * 3_600.0,
            arrival_rate_per_s=1 / 45.0,
            seed=17,
            overbooking=overbooking,
            mix=RequestMix.single(ServiceType.EMBB),
        )
    )
    return [
        label,
        result.admitted,
        f"{result.mean_multiplexing_gain:.2f}",
        f"{result.violation_rate:.2%}",
        f"{result.gross_revenue:.0f}",
        f"{result.total_penalties:.0f}",
        f"{result.net_revenue:.0f}",
    ]


def main() -> None:
    rows = [run_policy("none (1.0)", NoOverbooking())]
    for factor in (1.25, 1.5, 2.0, 2.5, 3.0):
        rows.append(run_policy(f"fixed {factor}", FixedOverbooking(factor)))
    rows.append(
        run_policy("adaptive (5% budget)", AdaptiveOverbooking(violation_budget=0.05))
    )
    print("=== overbooking operating points (4 h diurnal eMBB workload) ===\n")
    print(
        format_table(
            ["policy", "admitted", "gain", "viol_rate", "gross", "penalties", "net"],
            rows,
        )
    )
    print(
        "\nReading the table: gain and gross revenue rise with the factor, but\n"
        "past the knee penalties erase the profit — the demo's trade-off.\n"
        "The adaptive controller finds the knee without manual tuning."
    )


if __name__ == "__main__":
    main()
