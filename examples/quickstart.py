#!/usr/bin/env python
"""Quickstart: build the demo testbed, request a slice, watch it serve.

Reproduces the simplest path through the SIGCOMM'18 demo: one tenant
requests an end-to-end slice through the orchestrator, the slice is
admitted, deployed across RAN / transport / cloud, UEs attach to its
PLMN, and the control dashboard shows the result.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import ForecastOverbooking
from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.dashboard.dashboard import Dashboard
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import DiurnalProfile


def main() -> None:
    # 1. Build the Fig. 2 testbed: 2 eNBs, mmWave/µwave transport,
    #    OpenFlow switch, edge + core OpenStack-style datacenters.
    testbed = build_testbed()
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        overbooking=ForecastOverbooking(quantile=0.95),
        config=OrchestratorConfig(simulate_ues=True, max_ues_per_slice=5),
        streams=RandomStreams(seed=42),
    )
    orchestrator.start()

    # 2. Request a slice — the same fields the demo dashboard exposes:
    #    duration, max latency, expected throughput, price, penalty.
    request = SliceRequest(
        tenant_id="streamco",
        service_type=ServiceType.EMBB,
        sla=SLA(
            throughput_mbps=25.0,
            max_latency_ms=50.0,
            duration_s=2 * 3_600.0,
            availability=0.95,
        ),
        price=50.0,
        penalty_rate=0.5,
        n_users=5,
    )
    profile = DiurnalProfile(peak_mbps=25.0, base=0.2, noise_std=0.05)
    decision = orchestrator.submit(request, profile)
    print(f"admission decision: admitted={decision.admitted} ({decision.reason})\n")

    # 3. Let the simulated network run for 30 minutes.
    sim.run_until(1_800.0)

    # 4. Inspect what happened.
    slice_id = request.request_id.replace("req-", "slice-")
    network_slice = orchestrator.slice(slice_id)
    allocation = network_slice.allocation
    print(f"slice {slice_id}: state={network_slice.state.value}, PLMN={network_slice.plmn}")
    print(
        f"  RAN: {allocation.ran.effective_prbs}/{allocation.ran.nominal_prbs} PRBs "
        f"on {allocation.ran.enb_id}"
    )
    print(
        f"  transport: {' -> '.join(allocation.transport.path.link_ids)} "
        f"({allocation.transport.delay_ms:.1f} ms)"
    )
    print(
        f"  cloud: vEPC stack {allocation.cloud.stack_id} in {allocation.cloud.dc_id} "
        f"({allocation.cloud.vcpus} vCPUs)"
    )
    print(f"  end-to-end latency: {allocation.total_latency_ms:.1f} ms "
          f"(SLA bound {request.sla.max_latency_ms:.0f} ms)")
    runtime = orchestrator.runtime(slice_id)
    attached = sum(1 for ue in runtime.ues if ue.attached)
    print(f"  UEs attached to PLMN {network_slice.plmn}: {attached}/{len(runtime.ues)}\n")

    # 5. The control dashboard (what the demo projects on screen).
    print(Dashboard(orchestrator).render())


if __name__ == "__main__":
    main()
