#!/usr/bin/env python
"""The full SIGCOMM'18 demo session, replayed in simulation.

Heterogeneous tenants submit slice requests through the REST API (as the
demo dashboard does), the orchestrator admits for revenue, overbooks via
traffic forecasts, rejected requests show up in the dashboard, and the
gains-vs-penalties headline updates as slices run.

Run:  python examples/demo_dashboard.py
"""

from __future__ import annotations

from repro.api.routes import build_orchestrator_api
from repro.core.admission import GreedyPricePolicy
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import AdaptiveOverbooking
from repro.dashboard.dashboard import Dashboard
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

#: The requests "typed into" the dashboard: (tenant, service type,
#: throughput Mb/s, latency ms, duration s, price, penalty rate).
DEMO_REQUESTS = [
    ("streamco", "embb", 22.0, 60.0, 4 * 3_600.0, 90.0, 0.4),
    ("acme-automotive", "automotive", 12.0, 20.0, 3 * 3_600.0, 110.0, 0.9),
    ("mediclinic", "ehealth", 8.0, 30.0, 6 * 3_600.0, 190.0, 1.2),
    ("sensornet", "mmtc", 3.0, 300.0, 8 * 3_600.0, 12.0, 0.1),
    ("railops", "urllc", 5.0, 8.0, 2 * 3_600.0, 240.0, 2.0),
    ("streamco", "embb", 20.0, 80.0, 4 * 3_600.0, 80.0, 0.4),
    ("acme-automotive", "automotive", 15.0, 25.0, 3 * 3_600.0, 130.0, 0.9),
    ("streamco", "embb", 24.0, 70.0, 5 * 3_600.0, 120.0, 0.4),
    ("mediclinic", "ehealth", 10.0, 40.0, 4 * 3_600.0, 160.0, 1.2),
    ("sensornet", "mmtc", 4.0, 400.0, 8 * 3_600.0, 16.0, 0.1),
    ("railops", "urllc", 6.0, 9.0, 3 * 3_600.0, 300.0, 2.0),
    ("streamco", "embb", 18.0, 90.0, 4 * 3_600.0, 75.0, 0.4),
]


def main() -> None:
    testbed = build_testbed()
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        admission=GreedyPricePolicy(),
        overbooking=AdaptiveOverbooking(violation_budget=0.05, initial_quantile=0.9),
        config=OrchestratorConfig(
            monitoring_epoch_s=60.0,
            reconfig_every_epochs=5,
            min_history_for_forecast=10,
        ),
        streams=RandomStreams(seed=2018),
    )
    orchestrator.start()
    api = build_orchestrator_api(orchestrator)
    dashboard = Dashboard(orchestrator)

    # Submit one request every 10 simulated minutes, like a live demo —
    # through the versioned northbound API, with tenancy in the header.
    print("=== submitting slice requests through the v1 REST API ===")
    for i, (tenant, stype, mbps, latency, duration, price, penalty) in enumerate(
        DEMO_REQUESTS
    ):
        sim.run_until(i * 600.0)
        response = api.post(
            "/v1/slices",
            body={
                "service_type": stype,
                "throughput_mbps": mbps,
                "max_latency_ms": latency,
                "duration_s": duration,
                "price": price,
                "penalty_rate": penalty,
            },
            headers={"X-Tenant-Id": tenant},
        )
        verdict = "ACCEPTED" if response.status == 201 else "REJECTED"
        reason = "" if response.ok else f"  ({response.body['error']['message'][:60]})"
        print(
            f"t={sim.now:6.0f}s  {tenant:16s} {stype:10s} "
            f"{mbps:5.1f} Mb/s  ≤{latency:5.1f} ms  -> {verdict}{reason}"
        )

    # Run the rest of the day; print the dashboard at checkpoints.
    for checkpoint in (4 * 3_600.0, 8 * 3_600.0):
        sim.run_until(checkpoint)
        print(f"\n{'=' * 72}\n=== dashboard at t = {checkpoint / 3600:.0f} h ===\n")
        print(dashboard.headline())
    print(f"\n{'=' * 72}\n=== final dashboard ===\n")
    print(dashboard.render())
    q = orchestrator.overbooking.quantile
    print(f"\nadaptive controller settled at forecast quantile q = {q:.3f}")


if __name__ == "__main__":
    main()
