"""D11 (ablation) — calendar-aware admission of upcoming requests.

Paper §2: the admission problem accounts for "resource availability,
ongoing slice reservations **and upcoming requests**".  This ablation
quantifies why: tenants book slices in advance; a *myopic* broker that
ignores the calendar accepts immediate slices into the promised window
and then breaks its promises at start time (the advance install fails),
while the calendar-aware broker protects booked capacity.

Expected shape: the calendar-aware broker honours every accepted advance
booking (zero broken promises); the myopic broker breaks a substantial
fraction and, because broken promises forfeit the booking price, earns
less revenue from advance customers.
"""

from __future__ import annotations

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.slices import SliceState
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table

HORIZON_S = 4 * 3_600.0


def run_broker(respect_calendar: bool, seed: int = 12) -> dict:
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=OrchestratorConfig(respect_calendar=respect_calendar),
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    # Advance customers: every hour, two 40 Mb/s slices booked 30 min ahead.
    advance_requests = []
    t = 0.0
    while t + 1_800.0 + 3_600.0 < HORIZON_S:
        for _ in range(2):
            request = make_request(
                throughput_mbps=40.0, duration_s=3_000.0, price=200.0
            )
            decision = orch.submit_advance(
                request, ConstantProfile(40.0, level=0.5), start_time=t + 1_800.0
            )
            advance_requests.append((request, decision.admitted))
        t += 3_600.0
    # Immediate walk-ins: a 30 Mb/s slice every 10 minutes.
    def submit_walk_in():
        request = make_request(throughput_mbps=30.0, duration_s=2_400.0, price=60.0)
        orch.submit(request, ConstantProfile(30.0, level=0.5))

    walk_t = 300.0
    while walk_t < HORIZON_S:
        sim.schedule_at(walk_t, submit_walk_in)
        walk_t += 600.0
    sim.run_until(HORIZON_S)
    accepted = [r for r, admitted in advance_requests if admitted]
    broken = 0
    for request, _ in advance_requests:
        slice_id = request.request_id.replace("req-", "slice-")
        try:
            state = orch.slice(slice_id).state
        except Exception:
            continue
        if state is SliceState.REJECTED and any(
            r.request_id == request.request_id for r in accepted
        ):
            broken += 1
    honoured_revenue = sum(
        r.price
        for r in accepted
        if orch.slice(r.request_id.replace("req-", "slice-")).state
        is not SliceState.REJECTED
    )
    return {
        "mode": "calendar" if respect_calendar else "myopic",
        "advance_accepted": len(accepted),
        "promises_broken": broken,
        "honoured_revenue": honoured_revenue,
        "total_admissions": orch.ledger.admissions,
    }


def test_d11_calendar_ablation(benchmark):
    rows = []
    results = {}
    for respect in (True, False):
        out = run_broker(respect)
        results[respect] = out
        rows.append(
            [
                out["mode"],
                out["advance_accepted"],
                out["promises_broken"],
                out["honoured_revenue"],
                out["total_admissions"],
            ]
        )
    emit_table(
        "D11",
        "advance-booking ablation (2 bookings/h + walk-ins, 4 h)",
        ["mode", "advance_accepted", "promises_broken", "honoured_revenue", "admissions"],
        rows,
    )
    calendar, myopic = results[True], results[False]
    # Calendar-aware broker never breaks an accepted promise.
    assert calendar["promises_broken"] == 0
    # The myopic broker does (it accepted more, then failed installs).
    assert myopic["promises_broken"] > 0
    # Honoured advance revenue is higher with the calendar.
    assert calendar["honoured_revenue"] > myopic["honoured_revenue"]
    # Timed kernel: one calendar feasibility check over a loaded window.
    from repro.core.admission import ResourceVector
    from repro.core.calendar import ResourceCalendar

    cal = ResourceCalendar(ResourceVector(prbs=200.0, mbps=2_000.0, vcpus=160.0))
    for i in range(100):
        cal.commit(f"b{i}", float(i * 60), float(i * 60 + 3_000), ResourceVector(prbs=10.0))
    benchmark(lambda: cal.fits(ResourceVector(prbs=50.0), 1_000.0, 4_000.0))
