"""D8 — Orchestrator scalability.

A demo paper shows a 2-cell testbed; a broker product must scale.  We
sweep the testbed size (cells, DC nodes, PLMN pool) and measure
simulated-hours-per-wallclock-second plus the per-request decision
cost, at constant per-cell offered load.

Expected shape: decision latency grows roughly linearly in topology
size (CSPF dominates); the event engine sustains thousands of events
per second regardless.
"""

from __future__ import annotations

import time

from repro.experiments.runner import ScenarioConfig, ScenarioRunner
from repro.experiments.testbed import TestbedConfig

from benchmarks.conftest import emit_table

SCALES = (2, 4, 8, 16)


def run_scale(n_enbs: int, seed: int = 5):
    config = ScenarioConfig(
        horizon_s=3_600.0,
        arrival_rate_per_s=n_enbs / 120.0,  # constant per-cell load
        seed=seed,
        testbed=TestbedConfig(
            n_enbs=n_enbs,
            plmn_pool_size=6 * n_enbs,
            core_nodes=2 * n_enbs,
            edge_nodes=n_enbs,
        ),
    )
    runner = ScenarioRunner(config)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_d8_scale_sweep(benchmark):
    rows = []
    per_request_cost = {}
    for n_enbs in SCALES:
        result, elapsed = run_scale(n_enbs)
        cost_ms = 1_000.0 * elapsed / max(1, result.requests)
        per_request_cost[n_enbs] = cost_ms
        rows.append(
            [
                n_enbs,
                result.requests,
                result.admitted,
                result.events_processed,
                elapsed,
                cost_ms,
                result.events_processed / max(elapsed, 1e-9),
            ]
        )
    emit_table(
        "D8",
        "orchestrator scalability (1 h horizon, constant per-cell load)",
        ["enbs", "requests", "admitted", "events", "wall_s", "ms_per_request", "events_per_s"],
        rows,
    )
    # Sub-quadratic growth: 8× the cells costs well under 64× per request.
    assert per_request_cost[16] < per_request_cost[2] * 64
    # Timed kernel: the smallest scenario end-to-end.
    benchmark.pedantic(lambda: run_scale(2, seed=9), rounds=1, iterations=1)
