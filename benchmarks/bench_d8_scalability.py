"""D8 — Orchestrator scalability.

A demo paper shows a 2-cell testbed; a broker product must scale.  We
sweep the testbed size (cells, DC nodes, PLMN pool) and measure
simulated-hours-per-wallclock-second plus the per-request decision
cost, at constant per-cell offered load.  A second experiment measures
the *fleet-scale install engine*: a burst of admitted slices deployed
through the concurrent :class:`~repro.drivers.planner.BatchInstallPlanner`
versus the sequential seed path, over southbound drivers with realistic
per-call latency.

Expected shape: decision latency grows roughly linearly in topology
size (CSPF dominates); the event engine sustains thousands of events
per second regardless; the batched install of a burst is bounded by
the slowest pipeline stage, not the sum of every domain's latency, so
it beats the sequential path by well over 2× at 32 slices.

A third experiment (D8c) turns the control-plane observability
subsystem on over the same burst: it publishes the per-stage latency
breakdown (admission / placement / prepare / commit / journal) that
falls out of the tracing spans, and measures what the instrumentation
itself costs against the disabled no-op path.

A fourth experiment (D8d) measures *stall isolation*: one southbound
operation hangs mid-batch (``MockDriver.stall()``).  The threaded
planner baseline parks a worker thread on the hung blocking call and
cannot settle the batch until the backend comes back; the async
event-driven engine times the hung job out at its per-operation
deadline, unwinds it cleanly, and the healthy jobs commit in their own
latency.
"""

from __future__ import annotations

import os
import threading
import time

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.slices import PlmnPool
from repro.drivers.base import DomainSpec
from repro.drivers.mock import MockDriver
from repro.drivers.planner import (
    BatchInstallPlanner,
    InstallJob,
    ThreadedInstallPlanner,
)
from repro.drivers.registry import DriverRegistry
from repro.experiments.runner import ScenarioConfig, ScenarioRunner
from repro.experiments.testbed import build_testbed
from repro.experiments.testbed import TestbedConfig
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table

#: Testbed sizes swept by D8 (eNB counts).  Env-scalable: the default
#: keeps the historical curve; ``D8_SCALES=2,4,8,16,64,128,256`` pushes
#: to fleet scale (the larger points take minutes at the full 1 h
#: horizon — shrink ``D8_HORIZON_S`` alongside).
SCALES = tuple(
    int(token)
    for token in os.environ.get("D8_SCALES", "2,4,8,16").split(",")
    if token.strip()
)

#: Simulated horizon of each sweep point.
HORIZON_S = float(os.environ.get("D8_HORIZON_S", "3600"))

#: Burst size of the batched-install experiment (CI smoke shrinks it).
BATCH_SLICES = int(os.environ.get("D8_BATCH_SLICES", "32"))

#: Repeats of the instrumentation-overhead comparison (min-of-N).
OBS_REPEATS = int(os.environ.get("D8_OBS_REPEATS", "3"))

#: Pipeline stages reported in the per-stage latency breakdown.
OBS_STAGES = (
    "install.batch",
    "install.job",
    "admission",
    "placement",
    "driver.prepare",
    "driver.commit",
    "journal",
    "event",
)

#: Southbound latency emulated per driver call (a real controller's
#: RPC + configuration time; the simulator's in-process calls are
#: otherwise ~free, which would hide exactly the cost batching removes).
PREPARE_LATENCY_S = 0.002
COMMIT_LATENCY_S = 0.0005


def run_scale(n_enbs: int, seed: int = 5, horizon_s: float = HORIZON_S):
    config = ScenarioConfig(
        horizon_s=horizon_s,
        arrival_rate_per_s=n_enbs / 120.0,  # constant per-cell load
        seed=seed,
        testbed=TestbedConfig(
            n_enbs=n_enbs,
            plmn_pool_size=6 * n_enbs,
            core_nodes=2 * n_enbs,
            edge_nodes=n_enbs,
        ),
    )
    runner = ScenarioRunner(config)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


#: A sweep point must measure at least this many requests before its
#: ms-per-request figure counts — at small scales a short horizon can
#: land as few as *one* Poisson arrival, and a flatness ratio computed
#: from a single request is noise, not a measurement.
MIN_POINT_REQUESTS = int(os.environ.get("D8_MIN_POINT_REQUESTS", "8"))

#: Cap on how many seeds a point may accumulate chasing the minimum.
MAX_POINT_RUNS = int(os.environ.get("D8_MAX_POINT_RUNS", "8"))


def run_scale_measured(
    n_enbs: int,
    horizon_s: float = HORIZON_S,
    min_requests: int = MIN_POINT_REQUESTS,
    max_runs: int = MAX_POINT_RUNS,
    base_seed: int = 5,
) -> dict:
    """One statistically defensible sweep point: repeat :func:`run_scale`
    over consecutive seeds until the point has measured at least
    ``min_requests`` cumulative requests (capped at ``max_runs``), and
    report the **median** per-run ms-per-request as the point cost —
    the median is robust to the one run that caught a GC pause or a
    noisy-neighbour spike, where a single-run mean is not.

    Returns ``{"enbs", "requests", "admitted", "runs", "wall_s",
    "ms_per_request", "per_run_ms", "sampled"}``.  ``sampled`` is False
    when even ``max_runs`` accumulated seeds could not reach the
    request floor (e.g. a smoke run with a tiny horizon): the median is
    then tagged as noise so downstream gates can exclude it instead of
    reading a 1-request "median" as a measurement.
    """
    per_run_ms = []
    requests = admitted = 0
    wall = 0.0
    runs = 0
    for offset in range(max(1, max_runs)):
        result, elapsed = run_scale(
            n_enbs, seed=base_seed + offset, horizon_s=horizon_s
        )
        runs += 1
        wall += elapsed
        requests += result.requests
        admitted += result.admitted
        if result.requests > 0:
            per_run_ms.append(1_000.0 * elapsed / result.requests)
        if requests >= min_requests:
            break
    per_run_ms.sort()
    if per_run_ms:
        mid = len(per_run_ms) // 2
        if len(per_run_ms) % 2:
            median_ms = per_run_ms[mid]
        else:
            median_ms = (per_run_ms[mid - 1] + per_run_ms[mid]) / 2.0
    else:
        median_ms = 1_000.0 * wall  # no arrivals at all — report wall
    return {
        "enbs": n_enbs,
        "requests": requests,
        "admitted": admitted,
        "runs": runs,
        "wall_s": wall,
        "ms_per_request": median_ms,
        "per_run_ms": per_run_ms,
        "sampled": requests >= min_requests,
    }


#: Requests driven per shard by the sharded-mode measurement (D8e).
SHARDED_REQUESTS = int(os.environ.get("D8_SHARDED_REQUESTS", "16"))


def run_sharded_point(
    shards: int, n_enbs_per_shard: int, requests_per_shard: int = SHARDED_REQUESTS
) -> dict:
    """Per-shard control-plane cost in sharded mode: drive synchronous
    slice creates through the :class:`~repro.cluster.router.ShardRouter`
    (tenant-affine path — admission + placement + install + the router
    hop) and time each shard's batch separately.  Memory-only cluster:
    the point measures decision cost, not journal fsyncs.

    Returns ``{shard_id: {"requests", "admitted", "wall_s",
    "ms_per_request"}}``.
    """
    from repro.cluster import ClusterConfig, ControlPlaneCluster

    cluster = ControlPlaneCluster(
        ClusterConfig(
            shards=shards,
            n_enbs_per_shard=n_enbs_per_shard,
            max_plmns_per_enb=12,
            plmn_pool_size=6 * n_enbs_per_shard,
        )
    )
    # One tenant per shard, deterministic (the ring is seedless).
    owners: dict = {}
    for i in range(1024):
        owners.setdefault(cluster.ring.shard_for(f"tenant-{i}"), f"tenant-{i}")
        if len(owners) == shards:
            break
    points = {}
    for shard_id in sorted(owners):
        tenant = owners[shard_id]
        body = {
            "service_type": "embb",
            "throughput_mbps": 2.0,
            "max_latency_ms": 50.0,
            "duration_s": 3_600.0,
            "price": 100.0,
            "penalty_rate": 1.0,
            "tenant_id": tenant,
        }
        headers = {"x-tenant-id": tenant}
        admitted = 0
        start = time.perf_counter()
        for _ in range(requests_per_shard):
            response = cluster.router.post("/v1/slices", body=body, headers=headers)
            admitted += response.status == 201
        wall = time.perf_counter() - start
        points[shard_id] = {
            "requests": requests_per_shard,
            "admitted": admitted,
            "wall_s": round(wall, 4),
            "ms_per_request": round(1_000.0 * wall / max(1, requests_per_shard), 4),
        }
    cluster.close()
    return points


def test_d8e_sharded_per_request_cost(benchmark):
    """D8e — the sharded router path keeps per-request cost in the same
    regime as a single control plane (the router hop + merge layer must
    not dominate admission + install)."""
    points = run_sharded_point(shards=2, n_enbs_per_shard=4)
    emit_table(
        "D8e",
        f"sharded-mode per-request cost (2 shards, 4 eNBs each, "
        f"{SHARDED_REQUESTS} requests per shard)",
        ["shard", "requests", "admitted", "wall_s", "ms_per_request"],
        [
            [k, p["requests"], p["admitted"], p["wall_s"], p["ms_per_request"]]
            for k, p in sorted(points.items())
        ],
    )
    for shard_id, point in points.items():
        assert point["admitted"] == point["requests"], (
            f"shard {shard_id}: {point['admitted']}/{point['requests']} admitted"
        )
    benchmark.pedantic(
        lambda: run_sharded_point(shards=2, n_enbs_per_shard=4),
        rounds=1,
        iterations=1,
    )


def test_d8_scale_sweep(benchmark):
    rows = []
    per_request_cost = {}
    for n_enbs in SCALES:
        point = run_scale_measured(n_enbs)
        per_request_cost[n_enbs] = point["ms_per_request"]
        rows.append(
            [
                n_enbs,
                point["requests"],
                point["admitted"],
                point["runs"],
                point["wall_s"],
                point["ms_per_request"],
            ]
        )
        # The flatness claim below is only meaningful when every point
        # actually measured a real batch of requests.
        assert point["requests"] >= MIN_POINT_REQUESTS, (
            f"{n_enbs} eNBs: only {point['requests']} requests across "
            f"{point['runs']} runs (need >= {MIN_POINT_REQUESTS})"
        )
    emit_table(
        "D8",
        f"orchestrator scalability ({HORIZON_S / 3600.0:g} h horizon, "
        "constant per-cell load, median-of-runs cost)",
        ["enbs", "requests", "admitted", "runs", "wall_s", "ms_per_request"],
        rows,
    )
    # Sub-quadratic growth: k× the cells costs well under k²× per request.
    smallest, largest = min(SCALES), max(SCALES)
    ratio = largest / smallest
    assert per_request_cost[largest] < per_request_cost[smallest] * ratio**2
    # Timed kernel: the smallest scenario end-to-end.
    benchmark.pedantic(lambda: run_scale(2, seed=9), rounds=1, iterations=1)


def _latency_orchestrator(observability: bool = False) -> Orchestrator:
    """An orchestrator whose four southbound domains are thread-safe
    mock backends with per-call latency — placement planning still uses
    the real testbed, but install time is dominated by the (emulated)
    southbound RPCs, exactly like a physical deployment."""
    n_enbs = max(2, -(-BATCH_SLICES // 4))  # ~4 slices of 10 Mb/s per cell
    testbed = build_testbed(
        TestbedConfig(
            n_enbs=n_enbs,
            max_plmns_per_enb=6,
            plmn_pool_size=6 * n_enbs,
            edge_nodes=n_enbs,
            core_nodes=2 * n_enbs,
        )
    )
    registry = DriverRegistry(
        [
            MockDriver(
                domain=domain,
                capacity_mbps=1e9,
                max_concurrent_installs=8,
                prepare_latency_s=PREPARE_LATENCY_S,
                commit_latency_s=COMMIT_LATENCY_S,
                prepare_after=("cloud",) if domain == "epc" else (),
            )
            for domain in ("ran", "transport", "cloud", "epc")
        ]
    )
    return Orchestrator(
        sim=Simulator(),
        allocator=testbed.allocator,
        plmn_pool=PlmnPool(size=2 * BATCH_SLICES + 8),
        registry=registry,
        config=OrchestratorConfig(
            respect_calendar=False, observability=observability
        ),
        streams=RandomStreams(seed=11),
    )


def _install_burst_observed(
    n_slices: int, batched: bool, observability: bool
):
    """Install ``n_slices`` admitted slices; returns ``(wall_s, obs)``
    where ``obs`` is the orchestrator's observability sink (the no-op
    singleton when ``observability`` is off)."""
    orch = _latency_orchestrator(observability=observability)
    admissions = [
        (
            make_request(throughput_mbps=10.0, duration_s=86_400.0),
            ConstantProfile(10.0, level=0.5, noise_std=0.0),
        )
        for _ in range(n_slices)
    ]
    start = time.perf_counter()
    if batched:
        decisions = orch.install_admitted_batch(admissions)
    else:
        decisions = [
            orch.install_admitted(request, profile)
            for request, profile in admissions
        ]
    elapsed = time.perf_counter() - start
    assert all(d.admitted for d in decisions), [
        d.reason for d in decisions if not d.admitted
    ]
    return elapsed, orch.obs


def _install_burst(n_slices: int, batched: bool) -> float:
    """Install ``n_slices`` admitted slices; returns wall-clock seconds."""
    elapsed, _ = _install_burst_observed(n_slices, batched, observability=False)
    return elapsed


def measure_obs_overhead(n_slices: int, repeats: int = OBS_REPEATS):
    """Min-of-N wall clock of the batched burst with observability off
    vs. on; returns ``(off_s, on_s, overhead_fraction, stage_summary)``.

    Min-of-N because the question is intrinsic cost, not scheduler
    noise: the fastest observed run of each mode is the closest to the
    true floor on a shared runner.  One unmeasured warmup pair primes
    caches, and the modes are interleaved so drift (thermal, noisy
    neighbours) hits both equally instead of biasing whichever mode
    ran last.
    """
    _install_burst_observed(n_slices, batched=True, observability=False)
    _install_burst_observed(n_slices, batched=True, observability=True)
    off_runs = []
    on_runs = []
    for _ in range(repeats):
        off_runs.append(
            _install_burst_observed(n_slices, batched=True, observability=False)[0]
        )
        on_runs.append(
            _install_burst_observed(n_slices, batched=True, observability=True)
        )
    off_s = min(off_runs)
    on_s = min(elapsed for elapsed, _ in on_runs)
    _, obs = min(on_runs, key=lambda pair: pair[0])
    overhead = on_s / max(off_s, 1e-9) - 1.0
    return off_s, on_s, overhead, obs.stage_summary(OBS_STAGES)


def test_d8_batched_install_speedup(benchmark):
    """Fleet-scale install: the concurrent batch planner vs. the
    sequential seed path, same burst, same drivers."""
    sequential_s = _install_burst(BATCH_SLICES, batched=False)
    batched_s = _install_burst(BATCH_SLICES, batched=True)
    speedup = sequential_s / max(batched_s, 1e-9)
    emit_table(
        "D8b",
        f"batched vs. sequential install of {BATCH_SLICES} slices "
        f"({PREPARE_LATENCY_S * 1e3:.1f} ms prepare latency per domain)",
        ["mode", "slices", "wall_s", "slices_per_s", "speedup"],
        [
            ["sequential", BATCH_SLICES, sequential_s, BATCH_SLICES / sequential_s, 1.0],
            ["batched", BATCH_SLICES, batched_s, BATCH_SLICES / batched_s, speedup],
        ],
    )
    # The acceptance bar: >= 2× at the full 32-slice burst.  Tiny CI
    # smoke runs (D8_BATCH_SLICES < 16) only assert the batched path
    # does not regress, to keep the check robust on loaded runners.
    if BATCH_SLICES >= 16:
        assert speedup >= 2.0, f"batched install only {speedup:.2f}x faster"
    else:
        assert speedup >= 1.0, f"batched install slower ({speedup:.2f}x)"
    # Timed kernel: a small batched burst end-to-end.
    benchmark.pedantic(
        lambda: _install_burst(min(8, BATCH_SLICES), batched=True),
        rounds=1,
        iterations=1,
    )


# ----------------------------------------------------------------------
# D8c — observability: per-stage breakdown + instrumentation overhead
# ----------------------------------------------------------------------


def test_d8c_stage_breakdown_and_overhead(benchmark):
    """The control-plane observability subsystem measured on the same
    burst D8b times: where a batched install actually spends its time
    (per-stage histograms fed by the tracing spans), and what the
    instrumentation itself costs versus the disabled no-op path."""
    off_s, on_s, overhead, stages = measure_obs_overhead(BATCH_SLICES)
    emit_table(
        "D8c",
        f"instrumentation overhead, {BATCH_SLICES}-slice batched burst "
        f"(min of {OBS_REPEATS})",
        ["mode", "wall_s", "overhead"],
        [
            ["observability off (no-op)", off_s, 0.0],
            ["observability on", on_s, overhead],
        ],
    )
    emit_table(
        "D8c-stages",
        f"per-stage latency breakdown, {BATCH_SLICES}-slice batched burst",
        ["stage", "count", "p50_ms", "p95_ms", "p99_ms", "max_ms"],
        [
            [
                name,
                stats["count"],
                stats["p50_ms"],
                stats["p95_ms"],
                stats["p99_ms"],
                stats["max_ms"],
            ]
            for name, stats in stages.items()
        ],
    )
    # Every pipeline stage must actually be covered by the tracing.
    for stage in ("admission", "placement", "driver.prepare", "driver.commit"):
        assert stage in stages, f"stage {stage!r} produced no observations"
    # Loose sanity bar; the strict <=5% gate runs in benchmarks/ci_gate.py
    # over min-of-N on the quieter CI path.
    assert overhead < 0.5, f"observability overhead {overhead:.1%}"
    # Timed kernel: a small observed burst end-to-end.
    benchmark.pedantic(
        lambda: _install_burst_observed(
            min(8, BATCH_SLICES), batched=True, observability=True
        ),
        rounds=1,
        iterations=1,
    )


# ----------------------------------------------------------------------
# D8d — stall isolation: async engine vs. threaded planner baseline
# ----------------------------------------------------------------------

#: Jobs in the stalled batch (CI smoke can shrink it).
STALL_JOBS = int(os.environ.get("D8_STALL_JOBS", "16"))
#: The hung backend comes back after this long.
STALL_RELEASE_S = 0.5
#: Per-operation deadline the async engine applies.
STALL_TIMEOUT_S = 0.15


def _stall_registry() -> DriverRegistry:
    return DriverRegistry(
        [
            MockDriver(
                domain=domain,
                capacity_mbps=1e9,
                max_concurrent_installs=8,
                prepare_latency_s=PREPARE_LATENCY_S,
                commit_latency_s=COMMIT_LATENCY_S,
                prepare_after=("cloud",) if domain == "epc" else (),
            )
            for domain in ("ran", "transport", "cloud", "epc")
        ]
    )


def _stalled_batch(planner_cls):
    """Install a ``STALL_JOBS``-job batch with one hung transport
    operation (released after ``STALL_RELEASE_S``); returns
    ``(wall_s, jobs_ok, ops_timed_out)``."""
    registry = _stall_registry()
    hung = registry.get("transport")
    hung.stall()
    releaser = threading.Timer(STALL_RELEASE_S, hung.release_stall)
    releaser.daemon = True
    releaser.start()
    planner = planner_cls(
        registry,
        max_workers=8,
        batch_size=STALL_JOBS,
        operation_timeout_s=STALL_TIMEOUT_S,
    )
    jobs = [
        InstallJob(
            slice_id=f"stall-{planner_cls.__name__}-{i}",
            attempts=[
                {
                    domain: DomainSpec(
                        slice_id=f"stall-{planner_cls.__name__}-{i}",
                        throughput_mbps=10.0,
                    )
                    for domain in registry.domains()
                }
            ],
        )
        for i in range(STALL_JOBS)
    ]
    start = time.perf_counter()
    outcomes = planner.install(jobs)
    elapsed = time.perf_counter() - start
    releaser.cancel()
    hung.release_stall()
    return elapsed, sum(o.ok for o in outcomes), planner.ops_timed_out


def test_d8d_stall_isolation(benchmark):
    """One hung southbound op in an N-job batch: the async engine
    settles at its deadline with every healthy job committed; the
    threaded baseline cannot settle before the backend comes back."""
    async_s, async_ok, async_timeouts = _stalled_batch(BatchInstallPlanner)
    threaded_s, threaded_ok, _ = _stalled_batch(ThreadedInstallPlanner)
    isolation = threaded_s / max(async_s, 1e-9)
    emit_table(
        "D8d",
        f"stall isolation: {STALL_JOBS}-job batch, one transport op hung "
        f"{STALL_RELEASE_S * 1e3:.0f} ms, {STALL_TIMEOUT_S * 1e3:.0f} ms deadline",
        ["engine", "jobs_ok", "ops_timed_out", "wall_s", "isolation"],
        [
            ["threaded (baseline)", threaded_ok, 0, threaded_s, 1.0],
            ["async", async_ok, async_timeouts, async_s, isolation],
        ],
    )
    # Async: exactly the job that hit the stall timed out and unwound;
    # every healthy job committed, and the batch settled well before
    # the backend came back.
    assert async_ok >= STALL_JOBS - 1
    assert async_timeouts >= 1
    assert async_s < STALL_RELEASE_S, (
        f"async engine took {async_s:.2f}s — stalled on the hung domain"
    )
    # Threaded baseline: the parked worker holds the batch until the
    # stall releases (deadlines cannot preempt a blocking call).
    assert threaded_s >= STALL_RELEASE_S * 0.9
    assert isolation >= 1.5, f"stall isolation only {isolation:.2f}x"
    # Timed kernel: the async engine under the stall, end-to-end.
    benchmark.pedantic(
        lambda: _stalled_batch(BatchInstallPlanner), rounds=1, iterations=1
    )
