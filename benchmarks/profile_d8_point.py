"""cProfile one D8 sweep point and dump the profile as a CI artifact.

Nightly runs this after the scale sweep so a flatness regression comes
with the profile that explains it: the ``.prof`` dump opens in
``snakeviz``/``pstats`` and the ``.txt`` is the top-of-stack summary
readable straight from the artifact listing.

Usage::

    PYTHONPATH=src:. python benchmarks/profile_d8_point.py \
        --enbs 32 --out-dir d8-profile
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
from pathlib import Path

from benchmarks.bench_d8_scalability import HORIZON_S, run_scale

TOP_N = 40


def profile_point(n_enbs: int, horizon_s: float, seed: int, out_dir: Path) -> Path:
    """Profile one ``run_scale`` point; write ``.prof`` + ``.txt`` dumps.

    Returns:
        The path of the text summary.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    result, _elapsed = run_scale(n_enbs, seed=seed, horizon_s=horizon_s)
    profiler.disable()

    prof_path = out_dir / f"d8_{n_enbs}enbs.prof"
    profiler.dump_stats(str(prof_path))

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    for order in ("cumulative", "tottime"):
        buffer.write(f"=== top {TOP_N} by {order} ===\n")
        stats.sort_stats(order).print_stats(TOP_N)
    text_path = out_dir / f"d8_{n_enbs}enbs.txt"
    header = (
        f"D8 point profile: {n_enbs} eNBs, horizon {horizon_s:.0f}s, seed {seed}\n"
        f"requests={result.requests} admitted={result.admitted}\n\n"
    )
    text_path.write_text(header + buffer.getvalue())
    return text_path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--enbs", type=int, default=32, help="fleet size to profile")
    parser.add_argument("--horizon-s", type=float, default=HORIZON_S)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--out-dir", type=Path, default=Path("d8-profile"))
    args = parser.parse_args()
    text_path = profile_point(args.enbs, args.horizon_s, args.seed, args.out_dir)
    print(f"profile written: {text_path}")


if __name__ == "__main__":
    main()
