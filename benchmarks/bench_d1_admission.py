"""D1 — Admission control maximizes revenue vs. naive acceptance.

Demo claim: the orchestrator "applies admission control policies based
on a revenue maximization strategy" (ref [3]'s slice broker).  We sweep
offered load and compare FCFS, greedy price-density and knapsack batch
admission on identical request batches.

Expected shape: revenue(knapsack) ≥ revenue(greedy) ≥ revenue(FCFS),
with the gap widening as offered load exceeds capacity.
"""

from __future__ import annotations

import numpy as np

from repro.core.admission import (
    FcfsPolicy,
    GreedyPricePolicy,
    KnapsackPolicy,
    ResourceVector,
)
from repro.traffic.generator import RequestGenerator

from benchmarks.conftest import emit_table

#: Capacity vector of the canonical testbed (2×100 PRBs, 1 Gb/s, 160 vCPUs).
CAPACITY = ResourceVector(prbs=200.0, mbps=1_000.0, vcpus=160.0)

POLICIES = {
    "fcfs": FcfsPolicy,
    "greedy": GreedyPricePolicy,
    "knapsack": KnapsackPolicy,
}


def request_batch(n_requests: int, seed: int):
    """Materialize a batch of requests with their demand vectors."""
    rng = np.random.default_rng(seed)
    generator = RequestGenerator(rng, arrival_rate_per_s=1.0)
    batch = []
    for request, _profile in generator.batch(horizon_s=float(n_requests)):
        prbs = request.sla.throughput_mbps / 0.49  # ≈ reference-CQI PRB rate
        batch.append(
            (request, ResourceVector(prbs=prbs, mbps=request.sla.throughput_mbps, vcpus=6.0))
        )
    return batch


def revenue_of(policy_name: str, batch) -> tuple:
    policy = POLICIES[policy_name]()
    decisions = policy.decide_batch(batch, CAPACITY)
    revenue = sum(r.price for (r, _), d in zip(batch, decisions) if d.admitted)
    admitted = sum(1 for d in decisions if d.admitted)
    return revenue, admitted


def sweep(seeds=(0, 1, 2)) -> list:
    rows = []
    for n_requests in (10, 25, 50, 100):
        for name in POLICIES:
            revenues, admitted_counts = [], []
            for seed in seeds:
                batch = request_batch(n_requests, seed)
                revenue, admitted = revenue_of(name, batch)
                revenues.append(revenue)
                admitted_counts.append(admitted)
            rows.append(
                [
                    n_requests,
                    name,
                    float(np.mean(revenues)),
                    float(np.mean(admitted_counts)),
                ]
            )
    return rows


def test_d1_revenue_table(benchmark):
    rows = sweep()
    emit_table(
        "D1",
        "batch admission revenue by policy (mean over 3 seeds)",
        ["offered_requests", "policy", "revenue", "admitted"],
        rows,
    )
    # Shape checks: at every load, knapsack ≥ greedy ≥ ~fcfs.
    by_load = {}
    for n_requests, name, revenue, _ in rows:
        by_load.setdefault(n_requests, {})[name] = revenue
    for load, revenues in by_load.items():
        assert revenues["knapsack"] >= revenues["greedy"] - 1e-6, load
        assert revenues["knapsack"] >= revenues["fcfs"] - 1e-6, load
    # Overload widens the gap.
    assert by_load[100]["knapsack"] > by_load[100]["fcfs"]
    # Timed kernel: one knapsack batch decision at the heaviest load.
    batch = request_batch(100, seed=0)
    benchmark(lambda: KnapsackPolicy().decide_batch(batch, CAPACITY))


def test_d1_fcfs_kernel(benchmark):
    batch = request_batch(100, seed=0)
    benchmark(lambda: FcfsPolicy().decide_batch(batch, CAPACITY))


def test_d1_greedy_kernel(benchmark):
    batch = request_batch(100, seed=0)
    benchmark(lambda: GreedyPricePolicy().decide_batch(batch, CAPACITY))
