"""D6 — Edge vs. core DC selection satisfies latency-sensitive slices.

Demo claim: "cloud (or mobile edge) data centers are selected to
satisfy the network slice SLAs".  We submit a URLLC + eMBB mix and
check that the allocator spills latency-tight slices to the edge while
relaxed slices preserve edge capacity by going to the core; we also
ablate the VM placement policy (best/first/worst fit) on packing
density.

Expected shape: URLLC → edge DC, eMBB → core DC; best-fit packs more
vEPCs into a constrained DC than worst-fit.
"""

from __future__ import annotations

from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
from repro.cloud.heat import HeatStack
from repro.cloud.placement import BestFitPlacement, FirstFitPlacement, WorstFitPlacement
from repro.core.orchestrator import Orchestrator
from repro.epc.components import epc_template
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table


def test_d6_tier_selection(benchmark):
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=1),
    )
    orch.start()
    rows = []
    placements = {}
    workload = [
        ("urllc-1", 5.0, 8.0),
        ("embb-1", 20.0, 80.0),
        ("urllc-2", 5.0, 7.5),
        ("embb-2", 15.0, 60.0),
        ("ehealth-1", 8.0, 30.0),
    ]
    for name, mbps, latency in workload:
        request = make_request(throughput_mbps=mbps, max_latency_ms=latency)
        decision = orch.submit(
            request, ConstantProfile(mbps, level=0.5, noise_std=0.0)
        )
        assert decision.admitted, name
        slice_id = request.request_id.replace("req-", "slice-")
        allocation = orch.slice(slice_id).allocation
        placements[name] = allocation.cloud.dc_id
        rows.append(
            [name, mbps, latency, allocation.cloud.dc_id, allocation.total_latency_ms]
        )
    emit_table(
        "D6a",
        "DC tier selection under the latency budget",
        ["slice", "mbps", "sla_ms", "dc", "e2e_ms"],
        rows,
    )
    assert placements["urllc-1"] == "edge-dc"
    assert placements["urllc-2"] == "edge-dc"
    assert placements["embb-1"] == "core-dc"
    assert placements["embb-2"] == "core-dc"
    # Timed kernel: candidate-DC evaluation for one request.
    request = make_request(throughput_mbps=10.0, max_latency_ms=30.0)
    benchmark(
        lambda: testbed.allocator.candidate_datacenters(request, "enb1-agg")
    )


def packing_capacity(policy) -> int:
    """vEPC stacks a constrained DC fits under the given placement.

    9-vCPU nodes make fragmentation bite: a vEPC is 1+1+2+2 = 6 vCPUs,
    so consolidation fits a second vEPC's small VMs into the 3-vCPU
    leftovers while spreading strands them.
    """
    dc = Datacenter(
        "dc",
        DatacenterTier.EDGE,
        nodes=[ComputeNode(f"n{i}", vcpus=9, ram_gb=32.0, disk_gb=500.0) for i in range(4)],
    )
    count = 0
    while True:
        stack = HeatStack(epc_template(f"s{count}"), dc, owner=f"s{count}")
        try:
            stack.create(policy)
        except Exception:
            break
        count += 1
        if count > 50:
            break
    return count


def test_d6_placement_ablation(benchmark):
    rows = []
    results = {}
    for name, policy in (
        ("best-fit", BestFitPlacement()),
        ("first-fit", FirstFitPlacement()),
        ("worst-fit", WorstFitPlacement()),
    ):
        results[name] = packing_capacity(policy)
        rows.append([name, results[name]])
    emit_table(
        "D6b",
        "vEPC packing ablation (4 nodes × 9 vCPUs; vEPC = 1+1+2+2 vCPUs)",
        ["placement", "vepcs_packed"],
        rows,
    )
    # Consolidating policies pack strictly denser than spreading here.
    assert results["best-fit"] > results["worst-fit"]
    assert results["first-fit"] >= results["worst-fit"]
    benchmark(lambda: packing_capacity(BestFitPlacement()))
