"""D12 — Crash-recovery cost: journal replay vs. snapshot+tail.

An event-sourced control plane pays for its durability at restart:
recovery folds the write-ahead journal back into state, so recovery
time grows with journal length — unless checkpoints bound it.  This
experiment measures both sides of that trade:

- **full replay** — recovery time folding the entire journal from
  genesis, swept over journal length (churn records);
- **snapshot + tail** — the same state restored from the latest
  checkpoint plus the (tiny) post-checkpoint tail.

Expected shape: full replay grows linearly in journal length;
snapshot restore is O(live state) and flat, so the speedup widens with
churn.  The asserted floor — **≥ 2× at 1 000 records** — is the
acceptance criterion of the durability subsystem (a broken compaction
path shows up as ~1×).

The synthetic churn mirrors the real record mix (enqueue → install →
activate → expire plus feed events), keeping a small live set at the
end — exactly the "long uptime, bounded fleet" regime where
checkpointing matters most.

Usage::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_d12_recovery.py -q

``D12_RECORDS`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.store.codec import ReplayState, request_to_dict
from repro.store.store import ControlPlaneStore

from benchmarks.conftest import emit_table

#: Journal lengths swept (records); the acceptance floor is asserted
#: at ASSERT_AT records.
SWEEP = (250, 500, 1_000, 2_000)
ASSERT_AT = int(os.environ.get("D12_RECORDS", "1000"))
FLOOR_SPEEDUP = 2.0

#: Live slices kept at the end of the churn (snapshot size).
LIVE_SLICES = 10
#: Journal records one install→expire churn cycle costs.
RECORDS_PER_CYCLE = 6


def _request_payload(index: int) -> dict:
    return request_to_dict(
        SliceRequest(
            tenant_id=f"tenant-{index % 5}",
            service_type=ServiceType.EMBB,
            sla=SLA(throughput_mbps=10.0, max_latency_ms=50.0, duration_s=600.0),
            price=100.0,
            penalty_rate=1.0,
            request_id=f"req-{index:06d}",
        )
    )


def build_journal(directory: str, records: int) -> ControlPlaneStore:
    """A store whose journal holds ~``records`` churn records with
    ``LIVE_SLICES`` slices still live at the end."""
    store = ControlPlaneStore(directory, fsync_every=0, checkpoint_every=0)
    cycles = max(1, (records - LIVE_SLICES * 3) // RECORDS_PER_CYCLE)
    t = 0.0
    for index in range(cycles):
        t += 1.0
        slice_id = f"slice-{index:06d}"
        payload = _request_payload(index)
        store.append("admission.enqueued", time=t, request=payload)
        store.append(
            "install.started", time=t, request=payload,
            slice_id=slice_id, plmn="00101", fraction=1.0,
        )
        store.append(
            "slice.installed", time=t, request=payload, slice_id=slice_id,
            plmn="00101", fraction=1.0, window=[t, t + 600.0],
            reservations={"ran": f"r{index}", "cloud": f"c{index}"},
        )
        store.append("slice.activated", time=t + 3.0, slice_id=slice_id)
        store.append(
            "event.emitted", time=t + 3.0,
            event={"seq": index + 1, "type": "slice.activated"},
        )
        store.append("slice.expired", time=t + 603.0, slice_id=slice_id)
    # The live tail: installed + activated, never expired.
    for index in range(cycles, cycles + LIVE_SLICES):
        t += 1.0
        slice_id = f"slice-{index:06d}"
        payload = _request_payload(index)
        store.append(
            "slice.installed", time=t, request=payload, slice_id=slice_id,
            plmn="00101", fraction=1.0, window=[t, t + 600.0],
            reservations={"ran": f"r{index}", "cloud": f"c{index}"},
        )
        store.append("slice.activated", time=t + 3.0, slice_id=slice_id)
        store.append(
            "event.emitted", time=t + 3.0,
            event={"seq": index + 1, "type": "slice.activated"},
        )
    return store


def time_full_replay(store: ControlPlaneStore) -> tuple:
    """(seconds, state) folding the entire journal from genesis."""
    start = time.perf_counter()
    records = store.journal.records()
    state = ReplayState.restore(None, records)
    return time.perf_counter() - start, state


def time_snapshot_replay(store: ControlPlaneStore) -> tuple:
    """(seconds, state) restoring from snapshot + post-checkpoint tail."""
    start = time.perf_counter()
    snapshot, tail = store.load()
    state = ReplayState.restore(snapshot, tail)
    return time.perf_counter() - start, state


def run_point(directory: str, records: int) -> dict:
    store = build_journal(directory, records)
    journal_records = len(store.journal.records())
    full_s, full_state = time_full_replay(store)
    # Checkpoint from the folded state (exactly what a live
    # orchestrator's checkpoint captures), then measure the restart.
    store.checkpoint(full_state.to_dict())
    snap_s, snap_state = time_snapshot_replay(store)
    # The two recovery paths must converge on identical state.
    assert snap_state.digest() == full_state.digest()
    store.close()
    return {
        "records": journal_records,
        "live": len(full_state.live),
        "full_ms": full_s * 1e3,
        "snapshot_ms": snap_s * 1e3,
        "speedup": full_s / max(snap_s, 1e-9),
    }


def test_d12_recovery_speedup(benchmark, tmp_path):
    """Recovery time vs. journal length; snapshot+tail restore must be
    ≥ 2× faster than full replay at 1k records."""
    sweep = sorted(set(list(SWEEP) + [ASSERT_AT]))
    results = [
        run_point(str(tmp_path / f"store-{n}"), n) for n in sweep
    ]
    emit_table(
        "D12",
        "crash recovery: full journal replay vs snapshot+tail restore",
        ["journal_records", "live_slices", "full_replay_ms", "snapshot_ms", "speedup"],
        [
            [
                r["records"],
                r["live"],
                round(r["full_ms"], 3),
                round(r["snapshot_ms"], 3),
                round(r["speedup"], 2),
            ]
            for r in results
        ],
    )
    at_floor = next(r for r in results if r["records"] >= ASSERT_AT)
    assert at_floor["speedup"] >= FLOOR_SPEEDUP, (
        f"snapshot restore only {at_floor['speedup']:.2f}x faster than full "
        f"replay at {at_floor['records']} records (floor {FLOOR_SPEEDUP}x)"
    )
    # Replay cost must actually grow with journal length (the thing
    # checkpointing exists to bound).
    assert results[-1]["full_ms"] > results[0]["full_ms"]
    # Timed kernel: one snapshot-path restore.
    store = build_journal(str(tmp_path / "store-kernel"), ASSERT_AT)
    _, state = time_full_replay(store)
    store.checkpoint(state.to_dict())
    benchmark.pedantic(
        lambda: time_snapshot_replay(store), rounds=3, iterations=1
    )
    store.close()
