"""D13 — mobility + failure scenario packs score clean.

The scenario engine (``src/repro/scenarios/``) compiles commuter-tide
and vehicular-corridor mobility into orchestrator traffic (zone-slice
submits + handover-driven rescale storms) and overlays scheduled
DC/link/eNB outages with restoration.  This benchmark runs the built-in
packs at a fixed seed and asserts the survivability contract the CI
gate publishes:

* zero lost slices and zero leaked reservations after every pack
  (outage + heal + restore must be conservation-safe end to end);
* every scheduled outage converges (service healthy again inside the
  horizon) — by re-route when a detour exists, by restoration when the
  struck attachment has none;
* the run is deterministic: same pack + seed ⇒ same report digest.
"""

from __future__ import annotations

from repro.scenarios import build_named, run_named, run_scenario

from benchmarks.conftest import emit_table

SEED = 42

#: Packs the benchmark sweeps (smoke variant keeps the suite fast; the
#: full commuter-failure pack runs in the nightly scenario job).
PACKS = ("commuter-failure-smoke", "vehicular-corridor")


def run_pack(name: str, seed: int = SEED):
    return run_named(name, seed=seed)


def test_d13_scenario_packs(benchmark):
    rows = []
    reports = {}
    for name in PACKS:
        report = run_pack(name)
        reports[name] = report
        rows.append(
            [
                name,
                f"{report.admitted}/{report.submitted}",
                report.handovers,
                f"{report.rescales_applied}/{report.rescales_attempted}",
                round(report.violation_rate, 4),
                f"{report.outages_healed}/{report.outages}",
                round(report.heal_convergence_max_s, 0),
                len(report.lost_slices),
                len(report.leaked_reservations),
            ]
        )
    emit_table(
        "D13",
        f"scenario packs (seed {SEED})",
        [
            "pack",
            "admitted",
            "handovers",
            "rescales",
            "viol_rate",
            "healed",
            "conv_max_s",
            "lost",
            "leaked",
        ],
        rows,
    )
    for name, report in reports.items():
        assert report.clean, (
            f"{name}: lost={report.lost_slices} "
            f"leaked={report.leaked_reservations}"
        )
        assert report.outages_healed == report.outages, (
            f"{name}: {report.outages_healed}/{report.outages} outages healed"
        )
        assert report.handovers > 0 and report.admitted > 0
    # The DC outage in the commuter pack has no detour: its convergence
    # must reflect waiting out the restoration, not a silent no-op.
    smoke = reports["commuter-failure-smoke"]
    dc = next(o for o in smoke.outage_detail if o["kind"] == "dc")
    assert dc["convergence_s"] >= dc["end_s"] - dc["start_s"], (
        f"dc outage converged in {dc['convergence_s']}s — before restoration"
    )
    # Determinism: the digest is a pure function of (spec, seed).
    again = run_pack("commuter-failure-smoke")
    assert again.digest == smoke.digest
    # Timed kernel: the smoke pack end to end (spec build + run + score).
    benchmark(lambda: run_scenario(build_named("commuter-failure-smoke", seed=SEED)))
