"""D9 (ablation) — batch-window broker vs. online admission.

DESIGN.md calls out the decision-window trade-off of the ref [3] slice
broker: a longer window lets the knapsack see more candidates (better
revenue per window) at the cost of tenant-visible admission latency.
This ablation sweeps the window length on a bursty request pattern where
low-value requests arrive just before high-value ones.

Expected shape: revenue grows with the window (more of each burst is
co-decided) and saturates once the window covers a whole burst; the
zero-window (online FCFS) baseline earns the least.
"""

from __future__ import annotations

import numpy as np

from repro.core.admission import KnapsackPolicy
from repro.core.broker import SliceBroker
from repro.core.orchestrator import Orchestrator
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table

#: Adversarial burst: a cheap capacity hog arrives first, then two
#: valuable slices, every 20 minutes.
BURST = [
    (45.0, 10.0, 0.0),
    (30.0, 100.0, 30.0),
    (30.0, 100.0, 60.0),
]
BURST_PERIOD_S = 1_200.0
N_BURSTS = 6
SLICE_DURATION_S = 900.0  # expires before the next burst


def run_with_window(window_s: float, seed: int = 0) -> dict:
    testbed = build_testbed()
    sim = Simulator()
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=seed),
    )
    orchestrator.start()
    broker = (
        SliceBroker(orchestrator, window_s=window_s, policy=KnapsackPolicy())
        if window_s > 0
        else None
    )
    latencies = []
    for burst in range(N_BURSTS):
        base = burst * BURST_PERIOD_S
        for mbps, price, offset in BURST:
            at = base + offset

            def submit(mbps=mbps, price=price, at=at):
                request = make_request(
                    throughput_mbps=mbps,
                    price=price,
                    duration_s=SLICE_DURATION_S,
                    arrival_time=at,
                )
                profile = ConstantProfile(mbps, level=0.4, noise_std=0.0)
                if broker is None:
                    orchestrator.submit(request, profile)
                    latencies.append(0.0)
                else:
                    broker.submit(request, profile)
                    latencies.append(window_s)  # upper bound on wait

            sim.schedule_at(at, submit)
    sim.run_until(N_BURSTS * BURST_PERIOD_S + 600.0)
    ledger = orchestrator.ledger
    return {
        "window_s": window_s,
        "admitted": ledger.admissions,
        "gross": ledger.gross_revenue,
        "mean_wait_s": float(np.mean(latencies)) if latencies else 0.0,
    }


def test_d9_window_sweep(benchmark):
    rows = []
    results = {}
    for window_s in (0.0, 30.0, 90.0, 300.0):
        out = run_with_window(window_s)
        results[window_s] = out
        rows.append([out["window_s"], out["admitted"], out["gross"], out["mean_wait_s"]])
    emit_table(
        "D9",
        "batch-window ablation (adversarial bursts, knapsack broker)",
        ["window_s", "admitted", "gross_revenue", "mean_wait_s"],
        rows,
    )
    # Online FCFS admits the hog first and loses revenue.
    assert results[90.0]["gross"] > results[0.0]["gross"]
    # A window covering the whole burst captures (almost) all the value.
    assert results[300.0]["gross"] >= results[90.0]["gross"] - 1e-6
    # Latency is the price: waits grow with the window.
    assert results[300.0]["mean_wait_s"] > results[30.0]["mean_wait_s"]
    # Timed kernel: one full windowed run.
    benchmark.pedantic(lambda: run_with_window(90.0, seed=1), rounds=1, iterations=1)
