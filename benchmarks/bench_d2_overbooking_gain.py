"""D2 — Overbooking raises multiplexing gain; dashboard shows gain vs. penalties.

The headline demo claim: "maximizes the statistical multiplexing of
network slices resources ... our dashboard shows the current gains vs.
penalties".  We sweep the fixed overbooking factor on the canonical
testbed under a diurnal eMBB workload and report gain, penalties and
net revenue.

Expected shape: gain grows monotonically with the factor; penalties are
≈0 at factor 1 and grow past a knee; net revenue peaks at an
intermediate factor (overbooking pays until violations eat the profit).
"""

from __future__ import annotations

from repro.core.overbooking import FixedOverbooking, NoOverbooking
from repro.core.slices import ServiceType
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.traffic.generator import RequestMix

from benchmarks.conftest import emit_table

FACTORS = (1.0, 1.25, 1.5, 2.0, 2.5, 3.0)


def run_point(factor: float, seed: int = 4):
    overbooking = NoOverbooking() if factor <= 1.0 else FixedOverbooking(factor)
    return run_scenario(
        ScenarioConfig(
            horizon_s=4 * 3_600.0,
            arrival_rate_per_s=1 / 45.0,
            seed=seed,
            overbooking=overbooking,
            mix=RequestMix.single(ServiceType.EMBB),
        )
    )


def test_d2_gain_vs_penalty_curve(benchmark):
    rows = []
    results = {}
    for factor in FACTORS:
        result = run_point(factor)
        results[factor] = result
        rows.append(
            [
                factor,
                result.mean_multiplexing_gain,
                result.peak_multiplexing_gain,
                result.admitted,
                result.gross_revenue,
                result.total_penalties,
                result.net_revenue,
                result.violation_rate,
            ]
        )
    emit_table(
        "D2",
        "overbooking factor sweep (diurnal eMBB, 4 h)",
        ["factor", "gain_mean", "gain_peak", "admitted", "gross", "penalties", "net", "viol_rate"],
        rows,
    )
    gains = [results[f].mean_multiplexing_gain for f in FACTORS]
    # Gain is monotone non-decreasing in the factor (within noise).
    assert all(b >= a - 0.05 for a, b in zip(gains, gains[1:]))
    # No overbooking ⇒ (near) zero penalties; aggressive ⇒ real penalties.
    assert results[1.0].total_penalties == 0.0
    assert results[3.0].total_penalties > 0.0
    # The knee: some intermediate factor beats both extremes on net revenue.
    best = max(FACTORS, key=lambda f: results[f].net_revenue)
    assert 1.0 < best < 3.0
    # Timed kernel: one mid-factor scenario.
    benchmark.pedantic(lambda: run_point(1.5, seed=7), rounds=1, iterations=1)
