"""D10 (ablation) — transport self-healing under link failures.

DESIGN.md's failure-injection requirement, quantified: we run a steady
slice population over the Fig. 2 testbed, fail and restore the mmWave
uplinks on a cycle, and compare SLA violation rates and penalties with
the orchestrator's self-healing loop on vs. off.

Expected shape: with self-healing, slices detour onto µwave within one
monitoring epoch and the violation rate stays near the repair-epoch
floor; without it, every failure window converts fully into violations
and penalties.
"""

from __future__ import annotations

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table

FAIL_EVERY_S = 1_800.0
FAIL_FOR_S = 600.0
HORIZON_S = 4 * 3_600.0


def run_with_failures(self_healing: bool, seed: int = 3) -> dict:
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=OrchestratorConfig(self_healing=self_healing),
        streams=RandomStreams(seed=seed),
    )
    orch.start()
    # Four steady slices, two per cell, routed over mmWave initially.
    for i in range(4):
        request = make_request(throughput_mbps=12.0, duration_s=HORIZON_S)
        orch.submit(request, ConstantProfile(12.0, level=0.6, noise_std=0.02))
    # mmWave flaps: down for FAIL_FOR_S every FAIL_EVERY_S.
    topo = testbed.transport.topology
    mm_links = [f"enb{i + 1}-mmwave-fwd" for i in range(2)]

    def fail_links():
        for lid in mm_links:
            topo.link(lid).fail()

    def restore_links():
        for lid in mm_links:
            topo.link(lid).restore()

    t = FAIL_EVERY_S
    while t < HORIZON_S:
        sim.schedule_at(t, fail_links)
        sim.schedule_at(t + FAIL_FOR_S, restore_links)
        t += FAIL_EVERY_S
    sim.run_until(HORIZON_S - 100.0)
    return {
        "self_healing": self_healing,
        "violation_rate": orch.sla_monitor.violation_rate(),
        "penalties": orch.ledger.total_penalties,
        "repairs": testbed.transport.repairs_performed,
        "net_revenue": orch.ledger.net_revenue,
    }


def test_d10_self_healing_ablation(benchmark):
    rows = []
    results = {}
    for self_healing in (True, False):
        out = run_with_failures(self_healing)
        results[self_healing] = out
        rows.append(
            [
                "on" if self_healing else "off",
                out["repairs"],
                out["violation_rate"],
                out["penalties"],
                out["net_revenue"],
            ]
        )
    emit_table(
        "D10",
        "self-healing ablation (mmWave flaps 10 min every 30 min, 4 h)",
        ["self_healing", "repairs", "viol_rate", "penalties", "net_revenue"],
        rows,
    )
    healed, broken = results[True], results[False]
    assert healed["repairs"] > 0
    assert healed["violation_rate"] < broken["violation_rate"] / 2
    assert healed["penalties"] < broken["penalties"]
    assert healed["net_revenue"] > broken["net_revenue"]
    # Timed kernel: one repair cycle.
    testbed = build_testbed()
    from repro.transport.paths import PathRequest

    testbed.transport.reserve_path(
        "bench",
        "00199",
        PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=20.0, max_delay_ms=10.0),
    )

    def flap_and_repair():
        testbed.transport.topology.link("enb1-mmwave-fwd").fail()
        testbed.transport.repair_path("bench")
        testbed.transport.topology.link("enb1-mmwave-fwd").restore()
        testbed.transport.topology.link("enb1-uwave-fwd").fail()
        testbed.transport.repair_path("bench")
        testbed.transport.topology.link("enb1-uwave-fwd").restore()

    benchmark(flap_and_repair)
