"""D3 — Traffic forecasting enables safe overbooking (ref [4]).

Demo claim: "by monitoring past slices traffic behaviors, our
orchestrator forecasts future traffic demands".  We compare the
forecaster family on synthetic diurnal-plus-noise traces (the canonical
mobile-traffic shape) and validate quantile coverage.

Expected shape: Holt-Winters / AR beat naive and moving-average on MAE;
the 95% quantile forecast covers ≥ ~90% of next-step truths.
"""

from __future__ import annotations

import numpy as np

from repro.core.forecasting import (
    ArForecaster,
    EnsembleForecaster,
    HoltWintersForecaster,
    MovingAverageForecaster,
    NaiveForecaster,
    evaluate_forecaster,
)

from benchmarks.conftest import emit_table

SAMPLES_PER_DAY = 48  # 30-minute epochs


def diurnal_trace(n_days: int = 6, noise: float = 4.0, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n_days * SAMPLES_PER_DAY)
    base = 30 + 20 * np.sin(2 * np.pi * t / SAMPLES_PER_DAY)
    return np.clip(base + rng.normal(0, noise, t.size), 0, None)


FORECASTERS = {
    "naive": lambda: NaiveForecaster(),
    "moving-avg": lambda: MovingAverageForecaster(window=12),
    "ar(8)": lambda: ArForecaster(order=8),
    "holt-winters": lambda: HoltWintersForecaster(season_length=SAMPLES_PER_DAY),
    "ensemble": lambda: EnsembleForecaster(
        members=[
            NaiveForecaster(),
            MovingAverageForecaster(window=12),
            ArForecaster(order=8),
            HoltWintersForecaster(season_length=SAMPLES_PER_DAY),
        ]
    ),
}


def coverage_95(factory, trace: np.ndarray) -> float:
    """Fraction of next-step truths below the 95% quantile forecast."""
    split = int(trace.size * 0.6)
    covered = total = 0
    forecaster = factory()
    for origin in range(split, trace.size - 1):
        forecaster.fit(trace[:origin])
        if trace[origin] <= forecaster.forecast_quantile(1, 0.95):
            covered += 1
        total += 1
    return covered / total


def test_d3_forecaster_comparison(benchmark):
    rows = []
    maes = {}
    for seed in (0, 1):
        trace = diurnal_trace(seed=seed)
        for name, factory in FORECASTERS.items():
            metrics = evaluate_forecaster(factory(), trace)
            maes.setdefault(name, []).append(metrics["mae"])
            if seed == 0:
                rows.append(
                    [
                        name,
                        metrics["mae"],
                        metrics["rmse"],
                        metrics["mape"],
                        coverage_95(factory, trace),
                    ]
                )
    emit_table(
        "D3",
        "forecaster accuracy on diurnal traces (1-step rolling origin)",
        ["forecaster", "mae", "rmse", "mape", "coverage@q95"],
        rows,
    )
    mean_mae = {name: float(np.mean(values)) for name, values in maes.items()}
    # Seasonal/autoregressive models beat the baselines on diurnal data.
    assert mean_mae["holt-winters"] < mean_mae["naive"]
    assert mean_mae["holt-winters"] < mean_mae["moving-avg"]
    assert mean_mae["ar(8)"] < mean_mae["moving-avg"]
    # The ensemble is never worse than the best baseline.
    assert mean_mae["ensemble"] <= mean_mae["naive"] + 1e-9
    # Quantile coverage honest to its nominal level.
    for row in rows:
        assert row[4] >= 0.85, row[0]
    # Timed kernel: one Holt-Winters refit + forecast (the per-slice
    # reconfiguration cost inside the orchestrator loop).
    trace = diurnal_trace(seed=3)
    forecaster = HoltWintersForecaster(season_length=SAMPLES_PER_DAY)
    benchmark(lambda: forecaster.fit(trace).forecast_quantile(1, 0.95))


def test_d3_ar_fit_kernel(benchmark):
    trace = diurnal_trace(seed=5)
    forecaster = ArForecaster(order=8)
    benchmark(lambda: forecaster.fit(trace).forecast(1))


def test_d3b_city_trace_forecasting(benchmark):
    """Same comparison on the synthetic Milan-grid city traces that stand
    in for ref [4]'s proprietary operator dataset: weekly structure,
    lognormal noise and flash events — a harder, more realistic target
    than the clean sinusoid of D3."""
    from repro.traffic.traces import SyntheticCityTrace

    rows = []
    maes = {}
    for land_use in ("office", "residential", "transport"):
        trace = SyntheticCityTrace(land_use, noise_sigma=0.12).generate(
            n_days=7,
            sample_period_s=1_800.0,  # 48 samples/day
            rng=np.random.default_rng(17),
        )
        for name, factory in FORECASTERS.items():
            metrics = evaluate_forecaster(factory(), trace)
            maes.setdefault(name, []).append(metrics["mae"])
            rows.append([land_use, name, metrics["mae"], metrics["rmse"]])
    emit_table(
        "D3b",
        "forecaster accuracy on synthetic city traces (7 days, 30 min epochs)",
        ["land_use", "forecaster", "mae", "rmse"],
        rows,
    )
    mean_mae = {name: float(np.mean(values)) for name, values in maes.items()}
    # On smooth 30-min city traces persistence is a strong baseline; the
    # honest claims are (i) autoregression at least matches it and (ii)
    # the auto-selecting ensemble never regresses below the best member
    # — which is exactly why the orchestrator defaults to selection
    # rather than a fixed seasonal model.
    assert mean_mae["ar(8)"] <= mean_mae["naive"] * 1.1
    assert mean_mae["ensemble"] <= mean_mae["naive"] + 1e-9
    assert mean_mae["ensemble"] <= mean_mae["holt-winters"] + 1e-9
    # Timed kernel: generating one week of city trace.
    generator = SyntheticCityTrace("residential")
    benchmark(
        lambda: generator.generate(
            n_days=7, sample_period_s=1_800.0, rng=np.random.default_rng(3)
        )
    )
