"""CI perf-regression gate over the install-engine benchmarks.

Runs the two install-engine experiments at a CI-friendly scale, writes
the numbers to a JSON artifact (``BENCH_ci.json``) so the performance
trajectory is inspectable per commit, and exits non-zero if either
asserted floor is broken:

- **D8b** — batched vs. sequential install of a slice burst: the
  concurrent engine must keep a healthy speedup over the sequential
  seed path.
- **D8d** — stall isolation: with one southbound operation hung, the
  async engine must settle the batch well before the threaded-planner
  baseline can (which parks a worker until the backend comes back).

The floors are deliberately *below* the full-scale assertions in
``bench_d8_scalability.py`` (2.0× at 32 slices) so the gate is robust
on loaded shared runners while still catching real regressions — a
broken batch path shows up as ~1.0×, not ~1.6×.

Usage::

    PYTHONPATH=src:. python benchmarks/ci_gate.py [--out BENCH_ci.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

# CI scale: big enough that batching visibly wins, small enough for a
# shared runner.  Must be set before the bench module is imported (it
# reads the knobs at import time).
os.environ.setdefault("D8_BATCH_SLICES", "16")
os.environ.setdefault("D8_STALL_JOBS", "16")

from benchmarks.bench_d8_scalability import (  # noqa: E402
    BATCH_SLICES,
    STALL_JOBS,
    STALL_RELEASE_S,
    STALL_TIMEOUT_S,
    _install_burst,
    _stalled_batch,
)
from repro.drivers.planner import (  # noqa: E402
    BatchInstallPlanner,
    ThreadedInstallPlanner,
)

#: Asserted regression floors (see module docstring for the rationale).
FLOOR_D8B_SPEEDUP = 1.5
FLOOR_D8D_ISOLATION = 1.5


def run_gate() -> dict:
    """Run both experiments; returns the artifact payload."""
    failures = []

    sequential_s = _install_burst(BATCH_SLICES, batched=False)
    batched_s = _install_burst(BATCH_SLICES, batched=True)
    d8b_speedup = sequential_s / max(batched_s, 1e-9)
    if d8b_speedup < FLOOR_D8B_SPEEDUP:
        failures.append(
            f"D8b: batched speedup {d8b_speedup:.2f}x < floor {FLOOR_D8B_SPEEDUP}x"
        )

    async_s, async_ok, async_timeouts = _stalled_batch(BatchInstallPlanner)
    threaded_s, threaded_ok, _ = _stalled_batch(ThreadedInstallPlanner)
    d8d_isolation = threaded_s / max(async_s, 1e-9)
    if d8d_isolation < FLOOR_D8D_ISOLATION:
        failures.append(
            f"D8d: stall isolation {d8d_isolation:.2f}x < floor {FLOOR_D8D_ISOLATION}x"
        )
    if async_ok < STALL_JOBS - 1:
        failures.append(
            f"D8d: only {async_ok}/{STALL_JOBS} healthy jobs committed under stall"
        )
    if async_s >= STALL_RELEASE_S:
        failures.append(
            f"D8d: async engine took {async_s:.2f}s — it waited out the stall"
        )

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "d8b": {
            "slices": BATCH_SLICES,
            "sequential_s": round(sequential_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(d8b_speedup, 2),
            "floor": FLOOR_D8B_SPEEDUP,
        },
        "d8d": {
            "jobs": STALL_JOBS,
            "stall_release_s": STALL_RELEASE_S,
            "deadline_s": STALL_TIMEOUT_S,
            "async_s": round(async_s, 4),
            "async_jobs_ok": async_ok,
            "async_ops_timed_out": async_timeouts,
            "threaded_s": round(threaded_s, 4),
            "threaded_jobs_ok": threaded_ok,
            "isolation": round(d8d_isolation, 2),
            "floor": FLOOR_D8D_ISOLATION,
        },
        "failures": failures,
        "ok": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_ci.json", help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run_gate()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if payload["failures"]:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in payload["failures"]:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nperf gate ok: D8b {payload['d8b']['speedup']}x "
        f"(floor {FLOOR_D8B_SPEEDUP}x), "
        f"D8d {payload['d8d']['isolation']}x (floor {FLOOR_D8D_ISOLATION}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
