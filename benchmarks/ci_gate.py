"""CI perf-regression gate over the install-engine benchmarks.

Runs the two install-engine experiments at a CI-friendly scale, writes
the numbers to a JSON artifact (``BENCH_ci.json``) so the performance
trajectory is inspectable per commit, and exits non-zero if either
asserted floor is broken:

- **D8b** — batched vs. sequential install of a slice burst: the
  concurrent engine must keep a healthy speedup over the sequential
  seed path.
- **D8d** — stall isolation: with one southbound operation hung, the
  async engine must settle the batch well before the threaded-planner
  baseline can (which parks a worker until the backend comes back).
- **D12** — crash recovery: snapshot+tail restore must stay ≥ 2×
  faster than full-journal replay at 1k records, and a SIGKILL-style
  recovery smoke (churn → crash → fresh control plane → reconcile)
  must come back with zero lost slices and zero leaked reservations;
  the measured recovery time is published in the artifact.
- **Observability** — the tracing/histogram instrumentation must cost
  at most 5% over the disabled no-op path on the same batched burst
  (best of up to three interleaved min-of-N measurements — a real
  regression reproduces in every attempt, a scheduler spike does
  not); the per-stage latency breakdown it produces is published in
  the artifact.
- **D8 sweep** (soft gate) — the per-request decision cost across
  testbed scales is recorded so the scaling curve is inspectable per
  commit.  Two bands: past ``D8_FLATNESS_RATIO`` the gate warns
  (shared runners are noisy), past the explicit
  ``D8_FLATNESS_GATE_RATIO`` tolerance it *fails* — a curve that
  doubles the warn bar is a regression, not jitter.  The same check
  runs in **sharded mode** (2 shards behind the router, per-shard
  ``ms_per_request`` published).
- **Failover drill** — SIGKILL a shard leader mid-16-job-batch; the
  warm standby must promote with zero lost and zero leaked
  reservations, and the measured ``recovery_s`` lands in the artifact.
- **D13** — the mobility+failure scenario packs (scenario engine) at a
  fixed seed: every scheduled outage must heal inside the horizon and
  the end-of-run audit must show zero lost slices and zero leaked
  reservations; the scenario scores (admission yield, violation rate,
  heal convergence, report digest) are published in the artifact.

The floors are deliberately *below* the full-scale assertions in
``bench_d8_scalability.py`` (2.0× at 32 slices) so the gate is robust
on loaded shared runners while still catching real regressions — a
broken batch path shows up as ~1.0×, not ~1.6×.

Usage::

    PYTHONPATH=src:. python benchmarks/ci_gate.py [--out BENCH_ci.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

# CI scale: big enough that batching visibly wins, small enough for a
# shared runner.  Must be set before the bench module is imported (it
# reads the knobs at import time).
os.environ.setdefault("D8_BATCH_SLICES", "16")
os.environ.setdefault("D8_STALL_JOBS", "16")
os.environ.setdefault("D12_RECORDS", "1000")

from benchmarks.bench_d12_recovery import (  # noqa: E402
    ASSERT_AT as D12_RECORDS,
    FLOOR_SPEEDUP as FLOOR_D12_SPEEDUP,
    run_point as run_d12_point,
)
from benchmarks.bench_d8_scalability import (  # noqa: E402
    BATCH_SLICES,
    MIN_POINT_REQUESTS,
    STALL_JOBS,
    STALL_RELEASE_S,
    STALL_TIMEOUT_S,
    _install_burst,
    _stalled_batch,
    measure_obs_overhead,
    run_scale_measured,
)
from repro.drivers.planner import (  # noqa: E402
    BatchInstallPlanner,
    ThreadedInstallPlanner,
)

#: Asserted regression floors (see module docstring for the rationale).
FLOOR_D8B_SPEEDUP = 1.5
FLOOR_D8D_ISOLATION = 1.5

#: Observability instrumentation may cost at most this fraction of the
#: disabled path on the batched-burst wall clock (hard gate).
OBS_OVERHEAD_MAX = float(os.environ.get("D8_OBS_OVERHEAD_MAX", "0.05"))
OBS_GATE_REPEATS = int(os.environ.get("D8_OBS_GATE_REPEATS", "5"))
OBS_GATE_ATTEMPTS = int(os.environ.get("D8_OBS_GATE_ATTEMPTS", "3"))

#: D8 scalability sweep points (eNB counts) and their shortened-horizon
#: simulated hour — the gate records the ms-per-request curve per
#: commit and *warns* (never fails) when it stops being flat.
SWEEP_SCALES = tuple(
    int(token)
    for token in os.environ.get("D8_SWEEP_SCALES", "2,8,32").split(",")
    if token.strip()
)
SWEEP_HORIZON_S = float(os.environ.get("D8_SWEEP_HORIZON_S", "600"))
#: Warn when the per-request cost at the largest sweep point exceeds
#: this multiple of the smallest — the curve should stay near-flat.
#: Tightened (3.0 → 2.0) with the delta-maintained placement indices:
#: the hot path no longer rescans the fleet per request, and every
#: sweep point now measures a median over >= MIN_POINT_REQUESTS
#: requests, so the old single-request noise allowance is gone.
SWEEP_FLATNESS_RATIO = float(os.environ.get("D8_FLATNESS_RATIO", "2.0"))
#: Soft gate: *fail* the build when the curve blows past this explicit
#: tolerance.  Deliberately above the warn ratio — the warn band
#: absorbs shared-runner noise, the gate catches a genuinely
#: super-linear regression.  Tightened (6.0 → 3.0) alongside the warn
#: bar for the same reasons.
SWEEP_FLATNESS_GATE_RATIO = float(os.environ.get("D8_FLATNESS_GATE_RATIO", "3.0"))

#: Sharded-mode sweep points (eNBs *per shard*, 2 shards) — the same
#: flatness warn/gate applies to the router-fronted path.  The floor
#: is 4 eNBs: the per-shard RAN must fit the whole request batch, the
#: point measures cost, not admission pressure.
SHARDED_SCALES = tuple(
    int(token)
    for token in os.environ.get("D8_SHARDED_SCALES", "4,8").split(",")
    if token.strip()
)

#: Slices churned through the recovery smoke.
SMOKE_SLICES = 8

#: Scenario packs the D13 gate runs (tiny scales; the full
#: commuter-failure pack runs in the nightly scenario job).
SCENARIO_PACKS = tuple(
    token
    for token in os.environ.get(
        "D13_SCENARIO_PACKS", "commuter-failure-smoke,vehicular-corridor"
    ).split(",")
    if token.strip()
)
SCENARIO_SEED = int(os.environ.get("D13_SCENARIO_SEED", "42"))


def _check_flatness(
    label: str, flatness: float, warnings: list, failures: list
) -> None:
    """The two-band flatness check: warn past ``SWEEP_FLATNESS_RATIO``
    (shared-runner noise band), fail past the explicit
    ``SWEEP_FLATNESS_GATE_RATIO`` tolerance (soft gate)."""
    if flatness > SWEEP_FLATNESS_GATE_RATIO:
        failures.append(
            f"{label}: ms_per_request grew {flatness:.2f}x across the sweep "
            f"(gate tolerance {SWEEP_FLATNESS_GATE_RATIO}x) — decision cost "
            "is super-linear"
        )
    elif flatness > SWEEP_FLATNESS_RATIO:
        warnings.append(
            f"{label}: ms_per_request grew {flatness:.2f}x across the sweep "
            f"(warn bar {SWEEP_FLATNESS_RATIO}x, gate "
            f"{SWEEP_FLATNESS_GATE_RATIO}x) — decision cost is no longer flat"
        )


def run_scale_sweep(warnings: list, failures: list) -> dict:
    """D8 at CI scale: the per-request decision-cost curve across
    ``SWEEP_SCALES``.  The flatness check is a *soft gate*: the noise
    band only warns, but a curve past the explicit gate tolerance
    fails the build (a creeping super-linear regression should not
    need a human reading the artifact to be caught).

    Each point accumulates consecutive seeds until it holds at least
    ``MIN_POINT_REQUESTS`` requests; a point that still falls short
    (smoke horizons) is tagged ``sampled: false`` and *excluded* from
    the flatness ratio — the gate must never read a 1-request median
    as a measurement — with a warning recorded in the artifact."""
    curve = {}
    points = []
    for n_enbs in SWEEP_SCALES:
        point = run_scale_measured(n_enbs, horizon_s=SWEEP_HORIZON_S)
        if point["sampled"]:
            curve[n_enbs] = point["ms_per_request"]
        points.append(
            {
                "enbs": n_enbs,
                "requests": point["requests"],
                "runs": point["runs"],
                "wall_s": round(point["wall_s"], 4),
                "ms_per_request": round(point["ms_per_request"], 4),
                "sampled": point["sampled"],
            }
        )
        if not point["sampled"]:
            warnings.append(
                f"D8 sweep: point {n_enbs} eNBs measured only "
                f"{point['requests']} requests across {point['runs']} runs "
                f"(minimum {MIN_POINT_REQUESTS}) — tagged unsampled and "
                "excluded from the flatness ratio"
            )
    if len(curve) >= 2:
        smallest, largest = min(curve), max(curve)
        flatness = curve[largest] / max(curve[smallest], 1e-9)
        _check_flatness("D8 sweep", flatness, warnings, failures)
    else:
        flatness = None
        warnings.append(
            "D8 sweep: fewer than two sampled points — flatness not assessed"
        )
    return {
        "horizon_s": SWEEP_HORIZON_S,
        "points": points,
        "flatness": round(flatness, 2) if flatness is not None else None,
        "flatness_warn_ratio": SWEEP_FLATNESS_RATIO,
        "flatness_gate_ratio": SWEEP_FLATNESS_GATE_RATIO,
    }


def run_sharded_sweep(warnings: list, failures: list) -> dict:
    """The D8 flatness check in *sharded mode*: the same per-request
    cost curve, measured per shard through the
    :class:`~repro.cluster.router.ShardRouter` (2 shards), under the
    same warn/gate bands — the router hop and merge layer must not
    reintroduce the super-linearity sharding exists to remove."""
    from benchmarks.bench_d8_scalability import run_sharded_point

    points = []
    mean_curve = {}
    for n_enbs in SHARDED_SCALES:
        shard_points = run_sharded_point(shards=2, n_enbs_per_shard=n_enbs)
        costs = [p["ms_per_request"] for p in shard_points.values()]
        mean_curve[n_enbs] = sum(costs) / len(costs)
        points.append(
            {
                "enbs_per_shard": n_enbs,
                "per_shard": {str(k): p for k, p in shard_points.items()},
                "ms_per_request_mean": round(mean_curve[n_enbs], 4),
            }
        )
        for shard_id, point in shard_points.items():
            if point["admitted"] != point["requests"]:
                failures.append(
                    f"D8 sharded: shard {shard_id} at {n_enbs} eNBs admitted "
                    f"{point['admitted']}/{point['requests']}"
                )
    smallest, largest = min(SHARDED_SCALES), max(SHARDED_SCALES)
    flatness = mean_curve[largest] / max(mean_curve[smallest], 1e-9)
    _check_flatness("D8 sharded sweep", flatness, warnings, failures)
    return {
        "shards": 2,
        "points": points,
        "flatness": round(flatness, 2),
        "flatness_warn_ratio": SWEEP_FLATNESS_RATIO,
        "flatness_gate_ratio": SWEEP_FLATNESS_GATE_RATIO,
    }


def run_recovery_smoke(failures: list) -> dict:
    """Churn → SIGKILL-simulated restart (fresh process state over the
    surviving southbound) → reconcile; returns the timing payload and
    appends any reconciliation failure to ``failures``."""
    import tempfile
    import time

    from repro.core.orchestrator import Orchestrator, OrchestratorConfig
    from repro.core.slices import PlmnPool
    from repro.drivers.base import ReservationState
    from repro.drivers.mock import MockDriver
    from repro.experiments.testbed import TestbedConfig, build_testbed
    from repro.sim.engine import Simulator
    from repro.sim.randomness import RandomStreams
    from repro.store import ControlPlaneStore, RecoveryManager
    from repro.traffic.patterns import ConstantProfile
    from tests.conftest import make_request

    testbed = build_testbed(
        TestbedConfig(n_enbs=4, max_plmns_per_enb=12, plmn_pool_size=40)
    )
    testbed.registry.register(
        MockDriver("firewall", capacity_mbps=1e6, max_concurrent_installs=8)
    )
    directory = tempfile.mkdtemp(prefix="recovery-smoke-")

    def control_plane(store=None) -> Orchestrator:
        return Orchestrator(
            sim=Simulator(),
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=40),
            config=OrchestratorConfig(durability_dir=directory),
            streams=RandomStreams(seed=11),
            registry=testbed.registry,
            store=store,
        )

    first = control_plane()
    first.start()
    decisions = first.install_admitted_batch(
        [
            (make_request(throughput_mbps=5.0), ConstantProfile(5.0))
            for _ in range(SMOKE_SLICES)
        ]
    )
    admitted = sum(d.admitted for d in decisions)
    first.submit_advance(
        make_request(throughput_mbps=5.0, duration_s=600.0),
        ConstantProfile(5.0),
        start_time=1_000.0,
    )
    first.enqueue_admitted(
        make_request(throughput_mbps=5.0), ConstantProfile(5.0)
    )
    first.store.close()  # SIGKILL: the dead process's writes never land

    restarted = control_plane(store=ControlPlaneStore(directory))
    restarted.start()
    start = time.perf_counter()
    report = RecoveryManager(restarted).restore()
    recovery_s = time.perf_counter() - start

    live_ids = {s.slice_id for s in restarted.live_slices()}
    if report.slices_lost or report.slices_adopted != admitted:
        failures.append(
            f"recovery smoke: adopted {report.slices_adopted}/{admitted}, "
            f"lost {report.slices_lost}"
        )
    if report.bookings_restored != 1 or report.admissions_requeued != 1:
        failures.append(
            f"recovery smoke: bookings_restored={report.bookings_restored}, "
            f"admissions_requeued={report.admissions_requeued} (1/1 expected)"
        )
    for driver in testbed.registry.drivers():
        reservations = driver.list_reservations()
        leaked = {r.slice_id for r in reservations} - live_ids
        dirty = [
            r for r in reservations
            if r.state is not ReservationState.COMMITTED
        ]
        if leaked or dirty:
            failures.append(
                f"recovery smoke: domain {driver.domain} leaked={sorted(leaked)} "
                f"non-committed={len(dirty)}"
            )
    return {
        "slices": admitted,
        "replayed_records": report.replayed_records,
        "slices_adopted": report.slices_adopted,
        "slices_lost": report.slices_lost,
        "recovery_s": round(recovery_s, 4),
    }


def run_scenario_scores(failures: list) -> dict:
    """D13: the scenario packs at a fixed seed, scored by the engine.

    A dirty audit (lost slices / leaked reservations) or an outage that
    never converges fails the gate; the scores themselves are published
    so the survivability trajectory is inspectable per commit.
    """
    from repro.scenarios import run_named

    packs = {}
    for name in SCENARIO_PACKS:
        report = run_named(name, seed=SCENARIO_SEED)
        if not report.clean:
            failures.append(
                f"D13 {name}: lost={report.lost_slices} "
                f"leaked={report.leaked_reservations}"
            )
        if report.outages_healed < report.outages:
            failures.append(
                f"D13 {name}: only {report.outages_healed}/{report.outages} "
                "outages converged inside the horizon"
            )
        packs[name] = {
            "seed": SCENARIO_SEED,
            "submitted": report.submitted,
            "admitted": report.admitted,
            "admission_yield": round(report.admission_yield, 4),
            "handovers": report.handovers,
            "rescales_applied": report.rescales_applied,
            "rescales_attempted": report.rescales_attempted,
            "violation_rate": round(report.violation_rate, 4),
            "outages": report.outages,
            "outages_healed": report.outages_healed,
            "heal_convergence_max_s": report.heal_convergence_max_s,
            "repairs_performed": report.repairs_performed,
            "lost": len(report.lost_slices),
            "leaked": len(report.leaked_reservations),
            "wall_s": round(report.wall_s, 3),
            "digest": report.digest,
        }
    return {"seed": SCENARIO_SEED, "packs": packs}


def run_gate() -> dict:
    """Run the experiments; returns the artifact payload."""
    failures = []
    warnings = []

    sequential_s = _install_burst(BATCH_SLICES, batched=False)
    batched_s = _install_burst(BATCH_SLICES, batched=True)
    d8b_speedup = sequential_s / max(batched_s, 1e-9)
    if d8b_speedup < FLOOR_D8B_SPEEDUP:
        failures.append(
            f"D8b: batched speedup {d8b_speedup:.2f}x < floor {FLOOR_D8B_SPEEDUP}x"
        )

    async_s, async_ok, async_timeouts = _stalled_batch(BatchInstallPlanner)
    threaded_s, threaded_ok, _ = _stalled_batch(ThreadedInstallPlanner)
    d8d_isolation = threaded_s / max(async_s, 1e-9)
    if d8d_isolation < FLOOR_D8D_ISOLATION:
        failures.append(
            f"D8d: stall isolation {d8d_isolation:.2f}x < floor {FLOOR_D8D_ISOLATION}x"
        )
    if async_ok < STALL_JOBS - 1:
        failures.append(
            f"D8d: only {async_ok}/{STALL_JOBS} healthy jobs committed under stall"
        )
    if async_s >= STALL_RELEASE_S:
        failures.append(
            f"D8d: async engine took {async_s:.2f}s — it waited out the stall"
        )

    # Observability: instrumentation overhead (hard <= OBS_OVERHEAD_MAX
    # gate) + the per-stage latency breakdown published per commit.
    # Gated on the best of up to OBS_GATE_ATTEMPTS independent
    # interleaved min-of-N measurements: the burst wall clock jitters
    # by tens of percent on a shared runner, and a real instrumentation
    # regression reproduces in every attempt while a scheduler spike
    # does not.  Early-exits on the first attempt inside budget.
    obs_attempts = []
    obs_off_s = obs_on_s = 0.0
    obs_overhead = float("inf")
    obs_stages = {}
    for _ in range(max(1, OBS_GATE_ATTEMPTS)):
        off_s, on_s, overhead, stages = measure_obs_overhead(
            BATCH_SLICES, repeats=OBS_GATE_REPEATS
        )
        obs_attempts.append(round(overhead, 4))
        if overhead < obs_overhead:
            obs_off_s, obs_on_s, obs_overhead, obs_stages = (
                off_s, on_s, overhead, stages
            )
        if obs_overhead <= OBS_OVERHEAD_MAX:
            break
    if obs_overhead > OBS_OVERHEAD_MAX:
        failures.append(
            f"observability: instrumentation overhead {obs_overhead:.1%} > "
            f"budget {OBS_OVERHEAD_MAX:.0%} on the {BATCH_SLICES}-slice burst "
            f"(best of {len(obs_attempts)} attempts: {obs_attempts})"
        )

    sweep = run_scale_sweep(warnings, failures)
    sharded = run_sharded_sweep(warnings, failures)

    import tempfile

    d12 = run_d12_point(tempfile.mkdtemp(prefix="d12-gate-"), D12_RECORDS)
    if d12["speedup"] < FLOOR_D12_SPEEDUP:
        failures.append(
            f"D12: snapshot recovery speedup {d12['speedup']:.2f}x < floor "
            f"{FLOOR_D12_SPEEDUP}x at {d12['records']} records"
        )
    smoke = run_recovery_smoke(failures)

    from benchmarks.failover_drill import run_failover_drill

    drill = run_failover_drill(failures)
    # The full promotion trace belongs to the drill's own artifact, not
    # the per-commit perf summary.
    drill.pop("promotion", None)
    drill.pop("journal_status", None)

    d13 = run_scenario_scores(failures)

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "d8b": {
            "slices": BATCH_SLICES,
            "sequential_s": round(sequential_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(d8b_speedup, 2),
            "floor": FLOOR_D8B_SPEEDUP,
        },
        "d8d": {
            "jobs": STALL_JOBS,
            "stall_release_s": STALL_RELEASE_S,
            "deadline_s": STALL_TIMEOUT_S,
            "async_s": round(async_s, 4),
            "async_jobs_ok": async_ok,
            "async_ops_timed_out": async_timeouts,
            "threaded_s": round(threaded_s, 4),
            "threaded_jobs_ok": threaded_ok,
            "isolation": round(d8d_isolation, 2),
            "floor": FLOOR_D8D_ISOLATION,
        },
        "d12": {
            "journal_records": d12["records"],
            "live_slices": d12["live"],
            "full_replay_ms": round(d12["full_ms"], 3),
            "snapshot_ms": round(d12["snapshot_ms"], 3),
            "speedup": round(d12["speedup"], 2),
            "floor": FLOOR_D12_SPEEDUP,
        },
        "observability": {
            "slices": BATCH_SLICES,
            "repeats": OBS_GATE_REPEATS,
            "attempts": obs_attempts,
            "disabled_s": round(obs_off_s, 4),
            "enabled_s": round(obs_on_s, 4),
            "overhead": round(obs_overhead, 4),
            "overhead_max": OBS_OVERHEAD_MAX,
            "stages": {
                name: {
                    "count": stats["count"],
                    "p50_ms": stats["p50_ms"],
                    "p95_ms": stats["p95_ms"],
                    "p99_ms": stats["p99_ms"],
                    "max_ms": stats["max_ms"],
                }
                for name, stats in obs_stages.items()
            },
        },
        "d8_sweep": sweep,
        "d8_sharded": sharded,
        "recovery_smoke": smoke,
        "failover_drill": drill,
        "d13_scenarios": d13,
        "failures": failures,
        "warnings": warnings,
        "ok": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_ci.json", help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run_gate()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    for warning in payload["warnings"]:
        print(f"\nPERF GATE WARNING: {warning}", file=sys.stderr)
    if payload["failures"]:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in payload["failures"]:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nperf gate ok: D8b {payload['d8b']['speedup']}x "
        f"(floor {FLOOR_D8B_SPEEDUP}x), "
        f"D8d {payload['d8d']['isolation']}x (floor {FLOOR_D8D_ISOLATION}x), "
        f"D12 {payload['d12']['speedup']}x (floor {FLOOR_D12_SPEEDUP}x), "
        f"obs overhead {payload['observability']['overhead']:.1%} "
        f"(budget {OBS_OVERHEAD_MAX:.0%}), "
        f"recovery smoke {payload['recovery_smoke']['recovery_s']}s, "
        f"failover drill {payload['failover_drill']['recovery_s']}s "
        f"({payload['failover_drill']['slices_adopted']} adopted / "
        f"{payload['failover_drill']['slices_lost']} lost), "
        f"D13 {len(payload['d13_scenarios']['packs'])} scenario packs clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
