"""D5 — Transport paths meet delay+capacity SLAs on the demo topology.

Demo claim: "dedicated paths are selected to guarantee the required
delay and capacity in the transport network" over the mmWave/µwave/wired
testbed with the OpenFlow switch.  We exercise CSPF on the Fig. 2
topology: per-class latency budgets, capacity-driven spillover from
mmWave to µwave, and Yen's alternatives.

Expected shape: tight budgets route over mmWave; when mmWave residual is
exhausted the engine spills to µwave (higher delay) until the budget
forbids it; path computation stays well under a millisecond.
"""

from __future__ import annotations

from repro.experiments.testbed import build_testbed
from repro.transport.paths import (
    PathComputationError,
    PathRequest,
    constrained_shortest_path,
    k_shortest_paths,
)

from benchmarks.conftest import emit_table


def test_d5_per_class_budgets(benchmark):
    """Latency classes vs. achievable paths to each DC."""
    testbed = build_testbed()
    topo = testbed.transport.topology
    rows = []
    for klass, budget in (("urllc", 2.0), ("automotive", 4.0), ("embb", 12.0)):
        for dst in ("edge-dc-gw", "core-dc-gw"):
            try:
                path = constrained_shortest_path(
                    topo,
                    PathRequest("enb1-agg", dst, min_bandwidth_mbps=20.0, max_delay_ms=budget),
                )
                rows.append([klass, budget, dst, "ok", path.delay_ms, len(path.link_ids)])
            except PathComputationError:
                rows.append([klass, budget, dst, "infeasible", -1.0, 0])
    emit_table(
        "D5a",
        "per-class latency budgets on the Fig. 2 topology",
        ["class", "budget_ms", "dst", "result", "delay_ms", "hops"],
        rows,
    )
    outcome = {(r[0], r[2]): r[3] for r in rows}
    # URLLC budget of 2 ms: even the edge needs 1.5 ms (mmWave+fiber) — ok;
    # the core (extra 5 ms hop) must be infeasible.
    assert outcome[("urllc", "edge-dc-gw")] == "ok"
    assert outcome[("urllc", "core-dc-gw")] == "infeasible"
    assert outcome[("embb", "core-dc-gw")] == "ok"
    # Timed kernel: one CSPF query on the canonical topology.
    request = PathRequest("enb1-agg", "core-dc-gw", min_bandwidth_mbps=20.0, max_delay_ms=12.0)
    benchmark(lambda: constrained_shortest_path(topo, request))


def test_d5_capacity_spillover(benchmark):
    """Fill mmWave; subsequent slices must spill to µwave with higher delay."""
    testbed = build_testbed()
    controller = testbed.transport
    rows = []
    spilled_at = None
    for i in range(16):  # 10 fit on mmWave + 4 on µwave, then rejection
        request = PathRequest(
            "enb1-agg", "edge-dc-gw", min_bandwidth_mbps=100.0, max_delay_ms=10.0
        )
        try:
            allocation = controller.reserve_path(f"s{i}", f"001{i:02d}", request)
        except Exception:
            rows.append([i, "rejected", -1.0])
            break
        first_link = controller.topology.link(allocation.path.link_ids[0])
        rows.append([i, first_link.kind.value, allocation.path.delay_ms])
        if spilled_at is None and first_link.kind.value == "microwave":
            spilled_at = i
    emit_table(
        "D5b",
        "100 Mb/s reservations: mmWave fills, then µwave spillover",
        ["slice#", "first_hop", "delay_ms"],
        rows,
    )
    # mmWave carries 1 Gb/s ⇒ 10 reservations, then spill to µwave (400 ⇒ 4 more).
    assert spilled_at == 10
    kinds = [r[1] for r in rows]
    assert kinds[:10] == ["mmwave"] * 10
    assert "rejected" in kinds  # eventually both uplinks exhaust
    # Timed kernel: reserve+release cycle.
    testbed2 = build_testbed()

    def reserve_release():
        allocation = testbed2.transport.reserve_path(
            "bench", "00199",
            PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=50.0, max_delay_ms=10.0),
        )
        testbed2.transport.release_path("bench")
        return allocation

    benchmark(reserve_release)


def test_d5_yen_alternatives(benchmark):
    """k-shortest paths give genuine delay-ranked alternatives."""
    testbed = build_testbed()
    topo = testbed.transport.topology
    request = PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=50.0, max_delay_ms=20.0)
    paths = k_shortest_paths(topo, request, k=4)
    rows = [
        [i, "->".join(p.link_ids), p.delay_ms, p.bottleneck_mbps]
        for i, p in enumerate(paths)
    ]
    emit_table("D5c", "Yen alternatives enb1 -> edge DC", ["rank", "path", "delay_ms", "bottleneck"], rows)
    assert len(paths) >= 2  # mmWave route and µwave route
    delays = [p.delay_ms for p in paths]
    assert delays == sorted(delays)
    benchmark(lambda: k_shortest_paths(topo, request, k=4))
