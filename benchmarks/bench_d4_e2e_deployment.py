"""D4 — End-to-end slice installation across all three domains.

Demo claim: slices are installed end-to-end and "after few seconds,
user devices associated with the PLMN-id of the new slices are allowed
to connect"; rejected requests are shown in the dashboard.  We measure
(i) the orchestrator's decision+allocation wall-clock per request,
(ii) acceptance ratio vs. offered load, and (iii) the UE attach latency
on the installed slice.

Expected shape: acceptance decreases monotonically with offered load;
decision latency stays in the millisecond range (the real demo's
"few seconds" is dominated by VM boot, which simulation collapses);
attach latency ≈ RRC + 5 transport traversals + EPC processing.  The
batched-deployment variant (D4c) shows the fleet-scale install engine
collapsing a burst's total deployment wall-clock: per-slice latency of
a batched burst undercuts the sequential seed path by well over 2×
once southbound calls cost real time.
"""

from __future__ import annotations

import numpy as np

from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.experiments.testbed import build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile
from tests.conftest import make_request

from benchmarks.conftest import emit_table

#: Mean inter-arrival times (s) swept for the acceptance curve.
INTERARRIVALS = (300.0, 120.0, 60.0, 30.0, 15.0)


def test_d4_acceptance_vs_load(benchmark):
    rows = []
    ratios = []
    for interarrival in INTERARRIVALS:
        result = run_scenario(
            ScenarioConfig(
                horizon_s=2 * 3_600.0,
                arrival_rate_per_s=1.0 / interarrival,
                seed=6,
            )
        )
        ratios.append(result.acceptance_ratio)
        rows.append(
            [
                interarrival,
                result.requests,
                result.admitted,
                result.acceptance_ratio,
                result.gross_revenue,
                result.final_active_slices,
            ]
        )
    emit_table(
        "D4a",
        "acceptance ratio vs. offered load (2 h, no overbooking)",
        ["interarrival_s", "requests", "admitted", "acceptance", "gross", "active_at_end"],
        rows,
    )
    # Acceptance falls (weakly) as load rises.
    assert all(b <= a + 0.1 for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] > ratios[-1]
    # Timed kernel: one submit() decision incl. end-to-end allocation.
    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        streams=RandomStreams(seed=0),
    )
    orch.start()

    def submit_and_release():
        request = make_request(throughput_mbps=10.0)
        decision = orch.submit(
            request, ConstantProfile(10.0, level=0.5, noise_std=0.0)
        )
        assert decision.admitted
        slice_id = request.request_id.replace("req-", "slice-")
        orch._expire_immediately_for_benchmark(slice_id)

    # Expose a tiny helper for the kernel without polluting the public API.
    def _expire(slice_id):
        runtime = orch._runtimes.pop(slice_id, None)
        if runtime is None:
            return
        # Release through the driver registry, not the raw allocator —
        # otherwise every timed iteration leaks a reservation record
        # (and a running EpcInstance) inside the drivers.
        orch._release_domains(runtime.network_slice)
        orch.plmn_pool.release(slice_id)
        request_id = runtime.network_slice.request.request_id
        if orch.calendar.has(request_id):
            orch.calendar.release(request_id)

    orch._expire_immediately_for_benchmark = _expire
    benchmark(submit_and_release)


def test_d4_attach_latency(benchmark):
    """UE attach latency on a freshly installed slice (edge vs. core)."""
    rows = []
    for latency_bound, expected_dc in ((8.0, "edge-dc"), (80.0, "core-dc")):
        testbed = build_testbed()
        sim = Simulator()
        orch = Orchestrator(
            sim=sim,
            allocator=testbed.allocator,
            plmn_pool=testbed.plmn_pool,
            config=OrchestratorConfig(simulate_ues=True, max_ues_per_slice=8),
            streams=RandomStreams(seed=2),
        )
        orch.start()
        request = make_request(
            throughput_mbps=5.0, max_latency_ms=latency_bound, n_users=8
        )
        decision = orch.submit(
            request, ConstantProfile(5.0, level=0.5, noise_std=0.0)
        )
        assert decision.admitted
        sim.run_until(10.0)
        slice_id = request.request_id.replace("req-", "slice-")
        network_slice = orch.slice(slice_id)
        assert network_slice.allocation.cloud.dc_id == expected_dc
        latencies = [
            ue.attach_latency_s * 1_000.0
            for ue in orch.runtime(slice_id).ues
            if ue.attached
        ]
        rows.append(
            [
                latency_bound,
                network_slice.allocation.cloud.dc_id,
                float(np.mean(latencies)),
                len(latencies),
                network_slice.allocation.total_latency_ms,
            ]
        )
    emit_table(
        "D4b",
        "UE attach latency by hosting datacenter",
        ["sla_latency_ms", "dc", "attach_ms", "ues_attached", "user_plane_ms"],
        rows,
    )
    # Edge attach is faster than core attach (shorter signalling path).
    assert rows[0][2] < rows[1][2]
    # Timed kernel: the attach procedure itself.
    from repro.epc.attach import AttachProcedure

    testbed = build_testbed()
    sim = Simulator()
    orch = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        config=OrchestratorConfig(simulate_ues=True, max_ues_per_slice=1),
        streams=RandomStreams(seed=3),
    )
    orch.start()
    request = make_request(throughput_mbps=5.0)
    orch.submit(request, ConstantProfile(5.0, level=0.5, noise_std=0.0))
    sim.run_until(10.0)
    slice_id = request.request_id.replace("req-", "slice-")
    runtime = orch.runtime(slice_id)
    enb = testbed.ran.enb(runtime.network_slice.allocation.ran.enb_id)
    procedure = AttachProcedure(
        enb, runtime.epc, runtime.network_slice.allocation.transport.delay_ms
    )
    ue = runtime.ues[0]

    def attach_detach():
        procedure.detach(ue)
        outcome = procedure.attach(ue)
        assert outcome.success

    benchmark(attach_detach)


def test_d4_batched_deployment_latency(benchmark):
    """D4c — per-slice deployment wall-clock of an admission burst,
    sequential seed path vs. the concurrent batch install planner, over
    southbound drivers with emulated per-call latency."""
    from benchmarks.bench_d8_scalability import _install_burst

    burst = 8
    rows = []
    per_slice_ms = {}
    for mode, batched in (("sequential", False), ("batched", True)):
        elapsed = _install_burst(burst, batched=batched)
        per_slice_ms[mode] = 1_000.0 * elapsed / burst
        rows.append([mode, burst, elapsed, per_slice_ms[mode]])
    emit_table(
        "D4c",
        f"per-slice deployment latency, burst of {burst} (2 ms southbound prepare)",
        ["mode", "slices", "wall_s", "ms_per_slice"],
        rows,
    )
    # The hard >=2x acceptance bar lives in D8b at the full 32-slice
    # burst; at this small burst just require the batched path to win
    # (loaded CI runners can squeeze small-burst parallelism).
    assert per_slice_ms["batched"] < per_slice_ms["sequential"]
    # Timed kernel: one batched burst end-to-end.
    benchmark.pedantic(lambda: _install_burst(burst, batched=True), rounds=1, iterations=1)
