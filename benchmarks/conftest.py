"""Shared helpers for the benchmark/experiment harness.

Each ``bench_dN_*.py`` regenerates one demo-derived experiment (see
DESIGN.md §3): it sweeps the experiment's parameter, prints the result
table, persists it under ``benchmarks/results/`` (the numbers quoted in
EXPERIMENTS.md), and feeds a representative kernel to pytest-benchmark
for timing.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(
    experiment_id: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Format, print and persist one experiment table."""
    from repro.dashboard.reports import format_table

    table = f"== {experiment_id}: {title} ==\n" + format_table(headers, rows)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(table + "\n")
    return table
