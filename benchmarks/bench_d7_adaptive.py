"""D7 — Adaptive overbooking trades gain against an SLA-violation budget.

Demo claim: "the machine-learning engine implemented into the
orchestration algorithm trades off between multiplexing gain and SLA
violations".  We sweep the adaptive controller's violation budget and
compare against the no-overbooking and aggressive-fixed baselines.

Expected shape: the adaptive policy's violation rate tracks its budget
(tighter budget ⇒ fewer violations ⇒ less gain); its gain lands between
no-overbooking and aggressive-fixed.
"""

from __future__ import annotations

from repro.core.forecasting import HoltWintersForecaster
from repro.core.overbooking import AdaptiveOverbooking, FixedOverbooking, NoOverbooking
from repro.core.orchestrator import OrchestratorConfig
from repro.core.slices import ServiceType
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.traffic.generator import RequestMix

from benchmarks.conftest import emit_table

BUDGETS = (0.01, 0.05, 0.15)


def run_point(overbooking, seed: int = 4):
    return run_scenario(
        ScenarioConfig(
            horizon_s=6 * 3_600.0,
            arrival_rate_per_s=1 / 45.0,
            seed=seed,
            overbooking=overbooking,
            mix=RequestMix.single(ServiceType.EMBB),
            forecaster_factory=lambda: HoltWintersForecaster(season_length=24),
            orchestrator=OrchestratorConfig(
                monitoring_epoch_s=60.0,
                reconfig_every_epochs=5,
                min_history_for_forecast=10,
            ),
        )
    )


def test_d7_violation_budget_sweep(benchmark):
    rows = []
    results = {}
    baseline = run_point(NoOverbooking())
    results["none"] = baseline
    rows.append(
        ["no-overbooking", "-", baseline.mean_multiplexing_gain, baseline.violation_rate, baseline.net_revenue]
    )
    for budget in BUDGETS:
        result = run_point(
            AdaptiveOverbooking(violation_budget=budget, initial_quantile=0.9)
        )
        results[budget] = result
        rows.append(
            [
                "adaptive",
                budget,
                result.mean_multiplexing_gain,
                result.violation_rate,
                result.net_revenue,
            ]
        )
    aggressive = run_point(FixedOverbooking(3.0))
    results["fixed3"] = aggressive
    rows.append(
        ["fixed(3.0)", "-", aggressive.mean_multiplexing_gain, aggressive.violation_rate, aggressive.net_revenue]
    )
    emit_table(
        "D7",
        "adaptive overbooking vs. violation budget (6 h diurnal eMBB)",
        ["policy", "budget", "gain_mean", "viol_rate", "net_revenue"],
        rows,
    )
    # Adaptive sits between the two extremes on gain.
    for budget in BUDGETS:
        assert (
            results["none"].mean_multiplexing_gain - 0.05
            <= results[budget].mean_multiplexing_gain
            <= results["fixed3"].mean_multiplexing_gain + 0.05
        )
    # Looser budget ⇒ at least as much gain (weakly monotone).
    assert (
        results[0.15].mean_multiplexing_gain
        >= results[0.01].mean_multiplexing_gain - 0.05
    )
    # Tight budget keeps violations far below the aggressive baseline.
    assert results[0.01].violation_rate < aggressive.violation_rate
    # Timed kernel: one adaptive observation + decision step.
    policy = AdaptiveOverbooking(violation_budget=0.05)
    forecaster = HoltWintersForecaster(season_length=24).fit([10.0] * 48)

    def observe_decide():
        policy.observe(False)
        return policy.decide("s", 20.0, forecaster=forecaster)

    benchmark(observe_decide)
