"""The cluster failover drill, runnable standalone or from the CI gate.

SIGKILL a shard leader mid-16-job-batch (four southbound commits parked
behind a chaos stall), let the warm standby detect the stale lease,
promote through the RecoveryManager reconciliation, and verify the
acceptance invariants:

- **zero lost** — every slice the southbound holds COMMITTED is
  re-adopted by the promoted control plane,
- **zero leaked** — every domain's reservations are exactly the live
  slices, all COMMITTED, and ``held == Σ COMMITTED`` exactly,
- the untouched shard serves through the whole outage,
- the measured ``recovery_s`` (lease takeover → reconciled) and the
  promoted standby's recovery trace are published.

Usage::

    PYTHONPATH=src:. python benchmarks/failover_drill.py \
        [--out DRILL.json] [--trace-dir failover-trace]

``--trace-dir`` writes the promoted standby's recovery trace (the
promotion report, the per-shard journal status, and the post-failover
metrics scrape) as separate artifact files for the nightly upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

MBPS = 5.0
FIRST_WAVE = 4
BATCH = 16
STALLED = 4
KILLED = 0
LEASE_TIMEOUT_S = 0.05


def _chaos_testbed():
    from repro.drivers.mock import MockDriver
    from repro.experiments.testbed import TestbedConfig, build_testbed

    testbed = build_testbed(
        TestbedConfig(n_enbs=4, max_plmns_per_enb=12, plmn_pool_size=40)
    )
    testbed.registry.register(
        MockDriver("firewall", capacity_mbps=100_000.0, max_concurrent_installs=8)
    )
    return testbed


def run_failover_drill(failures: list, root: str | None = None) -> dict:
    """Run the drill; appends invariant violations to ``failures`` and
    returns the artifact payload (always, so a failed drill is still
    diagnosable from the numbers)."""
    import threading

    from repro.cluster import ClusterConfig, ControlPlaneCluster
    from repro.drivers.base import ReservationState
    from repro.traffic.patterns import ConstantProfile
    from tests.conftest import make_request

    root = root or tempfile.mkdtemp(prefix="failover-drill-")
    cluster = ControlPlaneCluster(
        ClusterConfig(
            shards=2,
            durability_root=os.path.join(root, "store"),
            lease_timeout_s=LEASE_TIMEOUT_S,
            orchestrator={"monitoring_epoch_s": 60.0},
        ),
        testbeds=[_chaos_testbed(), _chaos_testbed()],
    )

    # One tenant per shard, deterministic (the ring is seedless).
    owners = {}
    for i in range(256):
        owners.setdefault(cluster.ring.shard_for(f"tenant-{i}"), f"tenant-{i}")
        if len(owners) == 2:
            break
    victim_tenant, other_tenant = owners[KILLED], owners[1 - KILLED]
    leader = cluster.shard(KILLED)
    firewall = leader.testbed.registry.get("firewall")

    def body(tenant):
        return {
            "service_type": "embb",
            "throughput_mbps": MBPS,
            "max_latency_ms": 50.0,
            "duration_s": 3_600.0,
            "price": 100.0,
            "penalty_rate": 1.0,
            "tenant_id": tenant,
        }

    # 1. acknowledged churn + a warm standby tailing the WAL.
    for _ in range(FIRST_WAVE):
        response = cluster.router.post(
            "/v1/slices", body=body(victim_tenant),
            headers={"x-tenant-id": victim_tenant},
        )
        if response.status != 201:
            failures.append(f"drill: first-wave create -> {response.status}")
    standby = cluster.standby_for(KILLED)
    standby.poll()

    # 2. the 16-job batch, 4 commits stalled mid-flight.
    batch = [
        (make_request(throughput_mbps=MBPS, tenant=victim_tenant),
         ConstantProfile(MBPS))
        for _ in range(BATCH)
    ]
    firewall.stall(STALLED, kinds=("commit",))
    decisions = []
    worker = threading.Thread(
        target=lambda: decisions.extend(
            leader.orchestrator.install_admitted_batch(batch)
        ),
        daemon=True,
    )
    worker.start()
    deadline = time.monotonic() + 10.0
    while firewall.stalled_ops < STALLED and time.monotonic() < deadline:
        time.sleep(0.005)
    if firewall.stalled_ops < STALLED:
        failures.append(
            f"drill: only {firewall.stalled_ops}/{STALLED} commits stalled"
        )

    # 3. SIGKILL the leader; 4. the southbound finishes in flight.
    cluster.kill_leader(KILLED)
    firewall.release_stall()
    worker.join(timeout=30.0)
    if worker.is_alive() or not all(d.admitted for d in decisions):
        failures.append("drill: the mid-flight batch did not settle admitted")

    # The other shard serves through the outage.
    survivor = cluster.router.post(
        "/v1/slices", body=body(other_tenant),
        headers={"x-tenant-id": other_tenant},
    )
    if survivor.status != 201:
        failures.append(f"drill: surviving shard create -> {survivor.status}")

    # 5. the standby notices the stale lease and promotes.
    time.sleep(LEASE_TIMEOUT_S * 3)
    promotion = standby.tick()
    if promotion is None:
        failures.append("drill: standby never promoted")
        cluster.close()
        return {"promoted": False}
    cluster.adopt_promotion(KILLED, promotion)

    report = promotion.report
    expected = FIRST_WAVE + BATCH
    if report.slices_lost or report.slices_adopted != expected:
        failures.append(
            f"drill: adopted {report.slices_adopted}/{expected}, "
            f"lost {report.slices_lost} ({report.lost_slice_ids})"
        )
    promoted = cluster.shard(KILLED)
    live_ids = {s.slice_id for s in promoted.orchestrator.live_slices()}
    committed = sum(
        r.spec.throughput_mbps * r.spec.effective_fraction
        for r in firewall.list_reservations()
        if r.state is ReservationState.COMMITTED
    )
    for driver in leader.testbed.registry.drivers():
        reservations = driver.list_reservations()
        leaked = {r.slice_id for r in reservations} - live_ids
        dirty = [
            r for r in reservations
            if r.state is not ReservationState.COMMITTED
        ]
        if leaked or dirty:
            failures.append(
                f"drill: domain {driver.domain} leaked={sorted(leaked)} "
                f"non-committed={len(dirty)}"
            )
    if abs(firewall.held_mbps - expected * MBPS) > 1e-6:
        failures.append(
            f"drill: held {firewall.held_mbps} != {expected * MBPS} "
            "(held != sum COMMITTED)"
        )
    if abs(firewall.held_mbps - committed) > 1e-6:
        failures.append(
            f"drill: held {firewall.held_mbps} != committed {committed}"
        )

    payload = {
        "promoted": True,
        "shards": 2,
        "killed_shard": KILLED,
        "first_wave": FIRST_WAVE,
        "batch": BATCH,
        "stalled_commits": STALLED,
        "recovery_s": round(promotion.recovery_s, 4),
        "replay_lag_records": promotion.replay_lag_records,
        "replay_floor_lsn": promotion.replay_floor_lsn,
        "lease_epoch": promotion.lease.epoch,
        "slices_adopted": report.slices_adopted,
        "slices_lost": report.slices_lost,
        "orphans_compensated": report.orphans_compensated,
        "held_mbps": firewall.held_mbps,
        "promotion": promotion.to_dict(),
        "journal_status": {
            str(k): cluster.shard(k).store.status() for k in owners
        },
    }
    cluster.close()
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="DRILL.json", help="summary path")
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="directory for the promoted standby's recovery-trace artifacts",
    )
    args = parser.parse_args(argv)
    failures: list = []
    payload = run_failover_drill(failures)
    payload["failures"] = failures
    payload["ok"] = not failures
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        with open(os.path.join(args.trace_dir, "promotion.json"), "w") as handle:
            json.dump(payload.get("promotion", {}), handle, indent=2, sort_keys=True)
        with open(os.path.join(args.trace_dir, "drill.json"), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if failures:
        print("\nFAILOVER DRILL FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nfailover drill ok: recovery {payload['recovery_s']}s, "
        f"replay lag {payload['replay_lag_records']} records, "
        f"{payload['slices_adopted']} adopted / {payload['slices_lost']} lost"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
